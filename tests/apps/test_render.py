"""Tests for battlefield map rendering and analytics."""

from __future__ import annotations

import pytest

from repro.apps.battlefield import (
    BattlefieldApp,
    HexState,
    combat_report,
    front_line,
    opposing_fronts,
    render_map,
    simulate_sequential,
)
from repro.graphs import HexGrid


@pytest.fixture(scope="module")
def mid_battle():
    app = BattlefieldApp(
        opposing_fronts(grid=HexGrid(8, 8), depth=3, strength_per_hex=6.0)
    )
    return app, simulate_sequential(app, 10)


class TestRenderMap:
    def test_dimensions(self, mid_battle):
        app, states = mid_battle
        lines = render_map(app.scenario.grid, states).splitlines()
        assert len(lines) == 8
        # odd rows are indented half a hex
        assert lines[1].startswith(" ")
        assert not lines[0].startswith(" ")

    def test_glyph_vocabulary(self, mid_battle):
        app, states = mid_battle
        text = render_map(app.scenario.grid, states)
        assert set(text) <= set(". rRMbBWx\n")

    def test_sides_on_their_sides(self):
        app = BattlefieldApp(
            opposing_fronts(grid=HexGrid(4, 8), depth=2, strength_per_hex=6.0)
        )
        text = render_map(app.scenario.grid, app.scenario.initial)
        rows = text.splitlines()
        for row in rows:
            cells = row.split()
            red_side = "".join(cells[:2])
            blue_side = "".join(cells[-2:])
            assert set(red_side) <= set("rRMx")
            assert set(blue_side) <= set("bBWx")

    def test_empty_board(self):
        grid = HexGrid(3, 3)
        states = {gid: HexState(gid=gid) for gid in range(1, 10)}
        text = render_map(grid, states)
        assert set(text) <= set(". \n")


class TestAnalytics:
    def test_front_line_contested_only(self, mid_battle):
        app, states = mid_battle
        front = front_line(app.scenario.grid, states)
        for row, col in front:
            assert states[app.scenario.grid.gid(row, col)].contested

    def test_combat_report_consistency(self, mid_battle):
        app, states = mid_battle
        report = combat_report(app.scenario.grid, states)
        red0, blue0 = app.scenario.total_strengths()
        assert report["red"] + report["destroyed_red"] == pytest.approx(red0)
        assert report["blue"] + report["destroyed_blue"] == pytest.approx(blue0)
        assert report["contested_hexes"] == len(front_line(app.scenario.grid, states))

    def test_front_extent_spans_the_line(self, mid_battle):
        app, states = mid_battle
        report = combat_report(app.scenario.grid, states)
        if report["contested_hexes"] >= 2:
            # front stretches across most of the 8 rows
            assert report["front_extent"] >= 4

    def test_no_combat_no_front(self):
        grid = HexGrid(3, 3)
        states = {gid: HexState(gid=gid, red=1.0) for gid in range(1, 10)}
        report = combat_report(grid, states)
        assert report["contested_hexes"] == 0
        assert report["front_extent"] == 0
