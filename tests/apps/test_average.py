"""Tests for the neighbour-average application."""

from __future__ import annotations

import pytest

from repro.apps import COARSE_GRAIN, FINE_GRAIN, make_average_fn, neighbor_average
from repro.core import NodeView


class _Ctx:
    def __init__(self):
        self.charged = 0.0
        self.num_nodes = 10

    def work(self, seconds):
        self.charged += seconds


def view(value, neighbors, gid=1, iteration=1):
    return NodeView(
        global_id=gid,
        value=value,
        neighbors=tuple(neighbors),
        iteration=iteration,
    )


class TestNeighborAverage:
    def test_average_includes_self(self):
        assert neighbor_average(view(10.0, [(2, 20.0), (3, 30.0)])) == pytest.approx(20.0)

    def test_isolated_node_keeps_value(self):
        assert neighbor_average(view(7.0, [])) == 7.0

    def test_matches_paper_grain_constants(self):
        assert FINE_GRAIN == pytest.approx(0.3e-3)
        assert COARSE_GRAIN == pytest.approx(3e-3)
        assert COARSE_GRAIN / FINE_GRAIN == pytest.approx(10.0)


class TestMakeAverageFn:
    def test_charges_grain(self):
        fn = make_average_fn(0.5)
        ctx = _Ctx()
        fn(view(1.0, [(2, 3.0)]), ctx)
        assert ctx.charged == 0.5

    def test_returns_average(self):
        fn = make_average_fn(0.0)
        ctx = _Ctx()
        assert fn(view(0.0, [(2, 6.0)]), ctx) == 3.0

    def test_negative_grain_rejected(self):
        with pytest.raises(ValueError):
            make_average_fn(-1.0)
