"""Tests for the cellular-automata applications."""

from __future__ import annotations

import pytest

from repro.apps import (
    glider_board,
    life_step_reference,
    make_life_fn,
    make_majority_fn,
    moore_grid,
)
from repro.core import PlatformConfig, run_platform
from repro.graphs import hex32
from repro.mpi import IDEAL
from repro.partitioning import MetisLikePartitioner


class TestMooreGrid:
    def test_interior_degree_eight(self):
        g = moore_grid(5, 5)
        assert g.degree(13) == 8  # centre cell

    def test_corner_degree_three(self):
        g = moore_grid(5, 5)
        assert g.degree(1) == 3

    def test_size(self):
        g = moore_grid(3, 4)
        assert g.num_nodes == 12

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            moore_grid(0, 4)


class TestLifeRules:
    def _run_cell(self, alive, live_neighbors):
        from repro.core import NodeView

        class Ctx:
            num_nodes = 9

            def work(self, s):
                pass

        neighbors = tuple(
            (i + 2, 1 if i < live_neighbors else 0) for i in range(8)
        )
        view = NodeView(global_id=1, value=alive, neighbors=neighbors, iteration=1)
        return make_life_fn(0.0)(view, Ctx())

    @pytest.mark.parametrize("n,expected", [(0, 0), (1, 0), (2, 1), (3, 1), (4, 0), (8, 0)])
    def test_survival(self, n, expected):
        assert self._run_cell(1, n) == expected

    @pytest.mark.parametrize("n,expected", [(2, 0), (3, 1), (4, 0)])
    def test_birth(self, n, expected):
        assert self._run_cell(0, n) == expected


class TestGliderOnPlatform:
    def test_glider_translates(self):
        """After 4 generations a glider moves one cell diagonally; the
        platform on 4 ranks must match the reference exactly."""
        rows = cols = 12
        graph = moore_grid(rows, cols)
        board = glider_board(rows, cols)

        reference = dict(board)
        for _ in range(4):
            reference = life_step_reference(graph, reference)

        partition = MetisLikePartitioner(seed=0).partition(graph, 4)
        result = run_platform(
            graph,
            make_life_fn(0.0),
            partition,
            config=PlatformConfig(iterations=4),
            machine=IDEAL,
            init_value=lambda gid: board[gid],
        )
        assert result.values == reference
        # population conserved by glider motion
        assert sum(result.values.values()) == 5
        # and it actually moved
        assert result.values != board

    def test_block_is_still_life(self):
        graph = moore_grid(6, 6)
        board = {gid: 0 for gid in graph.nodes()}
        for r, c in ((2, 2), (2, 3), (3, 2), (3, 3)):
            board[r * 6 + c + 1] = 1
        partition = MetisLikePartitioner(seed=0).partition(graph, 2)
        result = run_platform(
            graph,
            make_life_fn(0.0),
            partition,
            config=PlatformConfig(iterations=5),
            machine=IDEAL,
            init_value=lambda gid: board[gid],
        )
        assert result.values == board


class TestMajority:
    def test_converges_to_stable_domains(self):
        graph = hex32()
        init = {gid: 1 if gid <= 20 else 0 for gid in graph.nodes()}
        partition = MetisLikePartitioner(seed=0).partition(graph, 4)
        result = run_platform(
            graph,
            make_majority_fn(0.0),
            partition,
            config=PlatformConfig(iterations=20),
            machine=IDEAL,
            init_value=lambda gid: init[gid],
        )
        # run one more step: state must be a fixed point (or 2-cycle member;
        # majority with self-vote on odd degree+1 is monotone -> fixed)
        again = run_platform(
            graph,
            make_majority_fn(0.0),
            partition,
            config=PlatformConfig(iterations=21),
            machine=IDEAL,
            init_value=lambda gid: init[gid],
        )
        assert result.values == again.values

    def test_unanimous_stays_unanimous(self):
        graph = hex32()
        partition = MetisLikePartitioner(seed=0).partition(graph, 2)
        result = run_platform(
            graph,
            make_majority_fn(0.0),
            partition,
            config=PlatformConfig(iterations=3),
            machine=IDEAL,
            init_value=lambda gid: 1,
        )
        assert set(result.values.values()) == {1}
