"""Property-based battlefield tests: conservation and platform equivalence
over randomized scenarios."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.battlefield import (
    BattlefieldApp,
    CombatModel,
    HexState,
    MovementModel,
    Scenario,
    simulate_sequential,
)
from repro.core import ICPlatform
from repro.graphs import HexGrid
from repro.mpi import IDEAL
from repro.partitioning import MetisLikePartitioner


@st.composite
def random_scenarios(draw):
    rows = draw(st.integers(min_value=3, max_value=6))
    cols = draw(st.integers(min_value=3, max_value=6))
    grid = HexGrid(rows, cols)
    states = {}
    for gid in range(1, grid.num_cells + 1):
        red = draw(st.sampled_from([0.0, 0.0, 2.0, 5.0, 9.0]))
        blue = draw(st.sampled_from([0.0, 0.0, 2.0, 5.0, 9.0]))
        states[gid] = HexState(gid=gid, red=red, blue=blue)
    return Scenario("random", grid, states)


@st.composite
def doctrines(draw):
    return (
        CombatModel(
            kill_rate=draw(st.sampled_from([0.02, 0.05, 0.15])),
            adjacent_intensity=draw(st.sampled_from([0.25, 0.5, 1.0])),
        ),
        MovementModel(
            advance_fraction=draw(st.sampled_from([0.25, 0.5, 0.75])),
            retreat_ratio=draw(st.sampled_from([2.0, 3.0, 5.0])),
        ),
    )


@given(random_scenarios(), doctrines(), st.integers(min_value=1, max_value=6))
@settings(max_examples=25, deadline=None)
def test_strength_plus_destroyed_is_invariant(scenario, doctrine, steps):
    combat, movement = doctrine
    app = BattlefieldApp(scenario, combat=combat, movement=movement)
    red0, blue0 = scenario.total_strengths()
    states = simulate_sequential(app, steps)
    red, blue = HexState.total_strengths(states.values())
    destroyed_red = sum(s.destroyed_red for s in states.values())
    destroyed_blue = sum(s.destroyed_blue for s in states.values())
    assert red + destroyed_red == pytest.approx(red0, abs=1e-9)
    assert blue + destroyed_blue == pytest.approx(blue0, abs=1e-9)
    assert all(s.red >= 0 and s.blue >= 0 for s in states.values())


@given(
    random_scenarios(),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=2, max_value=4),
)
@settings(max_examples=12, deadline=None)
def test_platform_equals_sequential_on_random_scenarios(scenario, steps, nprocs):
    app = BattlefieldApp(scenario)
    graph = app.graph()
    partition = MetisLikePartitioner(seed=0, trials=1).partition(graph, nprocs)
    platform = ICPlatform(
        graph,
        app.node_fns(),
        init_value=app.init_value,
        config=app.platform_config(steps=steps),
    )
    result = platform.run(partition, machine=IDEAL)
    assert result.values == simulate_sequential(app, steps)
