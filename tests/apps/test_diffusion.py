"""Tests for the Jacobi diffusion application."""

from __future__ import annotations

import pytest

from repro.apps import (
    hot_edge_plate,
    jacobi_step_reference,
    make_jacobi_fn,
    residual,
)
from repro.core import PlatformConfig, run_platform
from repro.mpi import IDEAL
from repro.partitioning import MetisLikePartitioner


class TestJacobiFn:
    def test_omega_validated(self):
        with pytest.raises(ValueError):
            make_jacobi_fn({}, omega=0.0)
        with pytest.raises(ValueError):
            make_jacobi_fn({}, omega=1.5)

    def test_boundary_pinned(self):
        from repro.core import NodeView

        class Ctx:
            num_nodes = 4

            def work(self, s):
                pass

        fn = make_jacobi_fn({1: 100.0}, grain=0.0)
        view = NodeView(global_id=1, value=5.0, neighbors=((2, 0.0),), iteration=1)
        assert fn(view, Ctx()) == 100.0

    def test_interior_relaxes_to_mean(self):
        from repro.core import NodeView

        class Ctx:
            num_nodes = 4

            def work(self, s):
                pass

        fn = make_jacobi_fn({}, omega=1.0, grain=0.0)
        view = NodeView(
            global_id=2, value=0.0, neighbors=((1, 10.0), (3, 20.0)), iteration=1
        )
        assert fn(view, Ctx()) == 15.0


class TestPlateProblem:
    @pytest.fixture(scope="class")
    def plate(self):
        return hot_edge_plate(10, 10)

    def test_platform_matches_reference(self, plate):
        graph, boundary, init_value = plate
        values = {gid: init_value(gid) for gid in graph.nodes()}
        for _ in range(15):
            values = jacobi_step_reference(graph, values, boundary)

        partition = MetisLikePartitioner(seed=0).partition(graph, 4)
        result = run_platform(
            graph,
            make_jacobi_fn(boundary, grain=0.0),
            partition,
            config=PlatformConfig(iterations=15),
            machine=IDEAL,
            init_value=init_value,
        )
        for gid in graph.nodes():
            assert result.values[gid] == pytest.approx(values[gid], abs=1e-12)

    def test_residual_decreases(self, plate):
        graph, boundary, init_value = plate
        values = {gid: init_value(gid) for gid in graph.nodes()}
        r0 = residual(graph, values, boundary)
        for _ in range(40):
            values = jacobi_step_reference(graph, values, boundary)
        assert residual(graph, values, boundary) < r0 * 0.5

    def test_solution_bounded_by_boundary_values(self, plate):
        graph, boundary, init_value = plate
        values = {gid: init_value(gid) for gid in graph.nodes()}
        for _ in range(60):
            values = jacobi_step_reference(graph, values, boundary)
        assert all(-1e-9 <= v <= 100.0 + 1e-9 for v in values.values())

    def test_heat_flows_from_hot_edge(self, plate):
        graph, boundary, init_value = plate
        values = {gid: init_value(gid) for gid in graph.nodes()}
        for _ in range(60):
            values = jacobi_step_reference(graph, values, boundary)
        # interior row near the hot edge is warmer than near the cold edge
        near_hot = values[1 * 10 + 5 + 1]
        near_cold = values[8 * 10 + 5 + 1]
        assert near_hot > near_cold

    def test_underrelaxation_also_converges(self, plate):
        graph, boundary, init_value = plate
        values = {gid: init_value(gid) for gid in graph.nodes()}
        for _ in range(60):
            values = jacobi_step_reference(graph, values, boundary, omega=0.7)
        assert residual(graph, values, boundary) < 5.0
