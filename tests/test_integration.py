"""Cross-module integration tests: complete user workflows."""

from __future__ import annotations

import pytest

from repro.apps import FINE_GRAIN, make_average_fn
from repro.apps.battlefield import BattlefieldApp, opposing_fronts, simulate_sequential
from repro.core import ICPlatform, PlatformConfig, run_platform
from repro.graphs import (
    HexGrid,
    hex32,
    random_connected_graph,
    read_chaco,
    read_partition,
    write_chaco,
    write_partition,
)
from repro.mpi import IDEAL, ORIGIN2000, TopologyMachineModel
from repro.partitioning import (
    MetisLikePartitioner,
    PaGridLikePartitioner,
    Partition,
    ProcessorGraph,
    SpectralPartitioner,
)


class TestFileWorkflow:
    """The Appendix-A pipeline: Chaco graph -> partition file -> platform."""

    def test_end_to_end_through_files(self, tmp_path):
        graph = random_connected_graph(48, avg_degree=4.0, seed=3, name="g48")
        graph_file = tmp_path / "g48_in.txt"
        part_file = tmp_path / "g48_out_8p.txt"
        write_chaco(graph, graph_file)
        partition = MetisLikePartitioner(seed=1).partition(graph, 8)
        write_partition(list(partition.assignment), part_file)

        loaded_graph = read_chaco(graph_file)
        loaded = Partition.from_assignment(
            loaded_graph,
            read_partition(part_file, num_nodes=48),
            8,
            method="file",
        )
        result = run_platform(
            loaded_graph,
            make_average_fn(FINE_GRAIN),
            loaded,
            config=PlatformConfig(iterations=10),
        )
        direct = run_platform(
            graph,
            make_average_fn(FINE_GRAIN),
            partition,
            config=PlatformConfig(iterations=10),
        )
        assert result.values == direct.values
        assert result.elapsed == direct.elapsed


class TestTopologyMachines:
    def test_topology_model_charges_distance(self):
        pg = ProcessorGraph.hypercube(4)
        machine = TopologyMachineModel.wrap(ORIGIN2000, pg, hop_latency_factor=1.0)
        # ranks 0 and 3 are 2 hops apart on the 4-hypercube
        near = machine.transfer_time_between(0, 0, 1)
        far = machine.transfer_time_between(0, 0, 3)
        assert far == pytest.approx(2 * near)

    def test_platform_runs_on_topology_machine(self):
        graph = hex32()
        pg = ProcessorGraph.hypercube(8)
        machine = TopologyMachineModel.wrap(ORIGIN2000, pg)
        partition = PaGridLikePartitioner(pg, seed=1).partition(graph, 8)
        result = run_platform(
            graph,
            make_average_fn(FINE_GRAIN),
            partition,
            config=PlatformConfig(iterations=10),
            machine=machine,
        )
        flat = run_platform(
            graph,
            make_average_fn(FINE_GRAIN),
            partition,
            config=PlatformConfig(iterations=10),
            machine=ORIGIN2000,
        )
        assert result.values == flat.values          # timing model never
        assert result.elapsed >= flat.elapsed        # changes semantics


class TestAlternativePartitionersOnPlatform:
    @pytest.mark.parametrize(
        "partitioner",
        [SpectralPartitioner(seed=1), MetisLikePartitioner(seed=1, matching="random")],
        ids=["spectral", "metis-random-matching"],
    )
    def test_platform_accepts_any_plugin(self, partitioner):
        graph = hex32()
        partition = partitioner.partition(graph, 4)
        result = run_platform(
            graph,
            make_average_fn(0.0),
            partition,
            config=PlatformConfig(iterations=3),
            machine=IDEAL,
            init_value=float,
        )
        assert len(result.values) == 32


class TestBattlefieldWithDynamicLB:
    """Section 7.1's first future extension: 'it would be interesting to
    see the performance of the platform while parallelizing [the
    battlefield simulation] with the dynamic load balancer utilities'."""

    def test_battlefield_runs_under_dynamic_lb(self):
        from repro.core import GreedyPairBalancer

        app = BattlefieldApp(
            opposing_fronts(grid=HexGrid(8, 8), depth=3, strength_per_hex=6.0)
        )
        graph = app.graph()
        partition = MetisLikePartitioner(seed=0).partition(graph, 4)
        config = app.platform_config(
            steps=8,
            dynamic_load_balancing=True,
            lb_period=2,
            validate_each_iteration=True,
        )
        platform = ICPlatform(
            graph,
            app.node_fns(),
            init_value=app.init_value,
            config=config,
            balancer=GreedyPairBalancer(0.1),
        )
        result = platform.run(partition, machine=IDEAL)
        # Migrations must not corrupt the simulation.
        assert result.values == simulate_sequential(app, 8)

    def test_battlefield_dynamic_lb_can_help_on_hot_zone(self):
        """With all combat in one corner, migrating hexes off the hot
        processor beats the static split."""
        from repro.apps.battlefield import single_combat_zone
        from repro.core import GreedyPairBalancer

        app = BattlefieldApp(
            single_combat_zone(grid=HexGrid(16, 16), zone_rows=6, strength_per_hex=12.0)
        )
        graph = app.graph()
        partition = MetisLikePartitioner(seed=0).partition(graph, 4)
        static = ICPlatform(
            graph, app.node_fns(), init_value=app.init_value,
            config=app.platform_config(steps=16),
        ).run(partition)
        dynamic = ICPlatform(
            graph, app.node_fns(), init_value=app.init_value,
            config=app.platform_config(
                steps=16, dynamic_load_balancing=True, lb_period=4,
                max_migrations_per_pair=3,
            ),
            balancer=GreedyPairBalancer(0.25),
        ).run(partition)
        assert dynamic.values == static.values
        assert len(dynamic.migrations) > 0
        assert dynamic.elapsed < static.elapsed * 1.05  # never much worse


class TestScaleSmoke:
    def test_512_node_graph_32_ranks(self):
        """A larger-than-paper configuration exercises the machinery at
        scale: 512 nodes, 32 simulated processors."""
        graph = HexGrid(16, 32).to_graph()
        partition = MetisLikePartitioner(seed=1, trials=1).partition(graph, 32)
        result = run_platform(
            graph,
            make_average_fn(FINE_GRAIN),
            partition,
            config=PlatformConfig(iterations=5),
        )
        assert len(result.values) == 512
        assert result.elapsed > 0
