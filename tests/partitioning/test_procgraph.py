"""Tests for processor network graphs."""

from __future__ import annotations

import pytest

from repro.partitioning import ProcessorGraph


class TestConstruction:
    def test_basic(self):
        pg = ProcessorGraph(3, [(0, 1, 1.0), (1, 2, 2.0)])
        assert pg.nprocs == 3
        assert pg.has_link(0, 1)
        assert not pg.has_link(0, 2)
        assert pg.link_cost(1, 2) == 2.0

    def test_default_speeds(self):
        pg = ProcessorGraph(2, [(0, 1, 1.0)])
        assert pg.speeds == (1.0, 1.0)

    def test_custom_speeds(self):
        pg = ProcessorGraph(2, [(0, 1, 1.0)], speeds=[2.0, 0.5])
        assert pg.speed(0) == 2.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            ProcessorGraph(0, [])
        with pytest.raises(ValueError):
            ProcessorGraph(2, [(0, 0, 1.0)])  # self link
        with pytest.raises(ValueError):
            ProcessorGraph(2, [(0, 5, 1.0)])  # out of range
        with pytest.raises(ValueError):
            ProcessorGraph(2, [(0, 1, -1.0)])  # bad cost
        with pytest.raises(ValueError):
            ProcessorGraph(2, [], speeds=[1.0])  # wrong length
        with pytest.raises(ValueError):
            ProcessorGraph(2, [], speeds=[1.0, 0.0])  # zero speed

    def test_missing_link_cost_raises(self):
        pg = ProcessorGraph(3, [(0, 1, 1.0)])
        with pytest.raises(KeyError):
            pg.link_cost(0, 2)

    def test_links_listing(self):
        pg = ProcessorGraph(3, [(2, 1, 3.0), (0, 1, 1.0)])
        assert pg.links() == [(0, 1, 1.0), (1, 2, 3.0)]


class TestPresets:
    @pytest.mark.parametrize("p", [1, 2, 4, 8, 16])
    def test_hypercube(self, p):
        pg = ProcessorGraph.hypercube(p)
        assert pg.nprocs == p
        # each node has log2(p) links
        import math

        degree = int(math.log2(p)) if p > 1 else 0
        for i in range(p):
            assert len(pg.neighbors(i)) == degree

    def test_hypercube_rejects_non_power(self):
        with pytest.raises(ValueError):
            ProcessorGraph.hypercube(6)

    def test_hypercube_links_differ_in_one_bit(self):
        pg = ProcessorGraph.hypercube(8)
        for i, j, _ in pg.links():
            diff = i ^ j
            assert diff and diff & (diff - 1) == 0

    def test_mesh(self):
        pg = ProcessorGraph.mesh(2, 3)
        assert pg.nprocs == 6
        assert pg.has_link(0, 1)
        assert pg.has_link(0, 3)
        assert not pg.has_link(0, 4)

    def test_fully_connected(self):
        pg = ProcessorGraph.fully_connected(5)
        assert len(pg.links()) == 10

    def test_heterogeneous_grid(self):
        pg = ProcessorGraph.heterogeneous_grid([2, 3], intra_cost=1.0, inter_cost=10.0)
        assert pg.nprocs == 5
        assert pg.link_cost(0, 1) == 1.0    # intra cluster 0
        assert pg.link_cost(2, 3) == 1.0    # intra cluster 1
        assert pg.link_cost(0, 2) == 10.0   # heads of both clusters

    def test_heterogeneous_grid_rejects_empty_cluster(self):
        with pytest.raises(ValueError):
            ProcessorGraph.heterogeneous_grid([2, 0])


class TestDistances:
    def test_direct_link(self):
        pg = ProcessorGraph.hypercube(8)
        assert pg.distance(0, 1) == 1.0

    def test_hypercube_distance_is_hamming(self):
        pg = ProcessorGraph.hypercube(16)
        for i in range(16):
            for j in range(16):
                assert pg.distance(i, j) == bin(i ^ j).count("1")

    def test_self_distance_zero(self):
        pg = ProcessorGraph.mesh(2, 2)
        assert pg.distance(1, 1) == 0.0

    def test_cheapest_path_wins(self):
        pg = ProcessorGraph(3, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0)])
        assert pg.distance(0, 2) == 2.0

    def test_unreachable_is_inf(self):
        pg = ProcessorGraph(3, [(0, 1, 1.0)])
        assert pg.distance(0, 2) == float("inf")


class TestGridFormat:
    def test_roundtrip(self):
        pg = ProcessorGraph.heterogeneous_grid([2, 2], speeds=[1.0, 2.0, 1.5, 1.0])
        text = pg.to_grid_format()
        back = ProcessorGraph.from_grid_format(text)
        assert back.nprocs == pg.nprocs
        assert back.speeds == pg.speeds
        assert back.links() == pg.links()

    def test_parse_errors(self):
        with pytest.raises(ValueError):
            ProcessorGraph.from_grid_format("")
        with pytest.raises(ValueError):
            ProcessorGraph.from_grid_format("2 1\n1.0\n1.0\n")  # missing link line
