"""Tests for the PaGrid-like architecture-aware partitioner."""

from __future__ import annotations

import pytest

from repro.graphs import hex64, random_connected_graph
from repro.partitioning import (
    MetisLikePartitioner,
    PaGridLikePartitioner,
    ProcessorGraph,
)


@pytest.fixture(scope="module")
def hypercube8():
    return ProcessorGraph.hypercube(8)


class TestBasics:
    def test_valid_partition(self, hypercube8):
        g = hex64()
        p = PaGridLikePartitioner(hypercube8, seed=1).partition(g, 8)
        assert len(set(p.assignment)) <= 8
        assert sum(p.loads()) == 64

    def test_nparts_must_match_procgraph(self, hypercube8):
        g = hex64()
        with pytest.raises(ValueError, match="match"):
            PaGridLikePartitioner(hypercube8).partition(g, 4)

    def test_rref_validated(self, hypercube8):
        with pytest.raises(ValueError):
            PaGridLikePartitioner(hypercube8, rref=-0.1)

    def test_deterministic(self, hypercube8):
        g = random_connected_graph(48, seed=3)
        a = PaGridLikePartitioner(hypercube8, seed=2).partition(g, 8)
        b = PaGridLikePartitioner(hypercube8, seed=2).partition(g, 8)
        assert a.assignment == b.assignment

    def test_nparts_one(self):
        pg = ProcessorGraph.hypercube(1)
        g = random_connected_graph(10, seed=0)
        p = PaGridLikePartitioner(pg).partition(g, 1)
        assert set(p.assignment) == {0}


class TestArchitectureAwareness:
    def test_estimated_times_reasonable(self, hypercube8):
        g = hex64()
        partitioner = PaGridLikePartitioner(hypercube8, seed=1)
        p = partitioner.partition(g, 8)
        times = partitioner._estimated_times(g, list(p.assignment), 8)
        assert all(t > 0 for t in times)
        assert max(times) / (sum(times) / 8) < 2.0

    def test_mapping_improves_on_expensive_links(self):
        """On a heterogeneous grid (cheap intra-cluster, expensive
        inter-cluster links), the PaGrid objective should place heavily
        communicating parts inside clusters."""
        pg = ProcessorGraph.heterogeneous_grid([2, 2], intra_cost=1.0, inter_cost=20.0)
        g = hex64()
        pagrid = PaGridLikePartitioner(pg, rref=0.45, seed=1).partition(g, 4)
        metis = MetisLikePartitioner(seed=1).partition(g, 4)

        def mapped_cost(partition):
            return sum(
                g.edge_weight(u, v) * pg.distance(partition.owner(u), partition.owner(v))
                for u, v in g.edges()
                if partition.owner(u) != partition.owner(v)
            )

        # PaGrid optimizes max estimated time, not pure mapped cost, so a
        # small margin is allowed; it must still be in the same league.
        assert mapped_cost(pagrid) <= 1.1 * mapped_cost(metis)

    def test_fast_processors_get_more_load(self):
        pg = ProcessorGraph.fully_connected(2)
        pg_fast = ProcessorGraph(2, [(0, 1, 1.0)], speeds=[3.0, 1.0])
        g = hex64()
        p = PaGridLikePartitioner(pg_fast, seed=1).partition(g, 2)
        loads = p.loads()
        assert loads[0] > loads[1]

    def test_rref_zero_reduces_to_load_balance(self):
        """With no communication term the refinement should keep loads tight."""
        pg = ProcessorGraph.hypercube(4)
        g = random_connected_graph(40, seed=5)
        p = PaGridLikePartitioner(pg, rref=0.0, seed=1).partition(g, 4)
        assert p.imbalance() <= 1.35

    def test_competitive_edge_cut_on_hypercube(self, hypercube8):
        """On a uniform hypercube PaGrid should be in the same quality
        league as the Metis-like partitioner (within 2x on edge cut)."""
        g = random_connected_graph(64, seed=8)
        pagrid = PaGridLikePartitioner(hypercube8, seed=1).partition(g, 8)
        metis = MetisLikePartitioner(seed=1).partition(g, 8)
        assert pagrid.edge_cut() <= 2 * metis.edge_cut()
