"""Property-based tests: every partitioner yields valid partitions."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import random_connected_graph, validate_assignment
from repro.partitioning import (
    BfsGreedyPartitioner,
    MetisLikePartitioner,
    PaGridLikePartitioner,
    ProcessorGraph,
    RandomPartitioner,
    RoundRobinPartitioner,
    SpectralPartitioner,
)

PARTITIONERS = [
    RoundRobinPartitioner(),
    RandomPartitioner(seed=0),
    BfsGreedyPartitioner(seed=0),
    MetisLikePartitioner(seed=0, trials=1),
    SpectralPartitioner(seed=0),
]


@given(
    n=st.integers(min_value=2, max_value=40),
    seed=st.integers(min_value=0, max_value=10**6),
    k=st.integers(min_value=1, max_value=6),
)
@settings(max_examples=30, deadline=None)
@pytest.mark.parametrize("partitioner", PARTITIONERS, ids=lambda p: p.name)
def test_every_partitioner_is_valid(partitioner, n, seed, k):
    g = random_connected_graph(n, seed=seed)
    p = partitioner.partition(g, k)
    validate_assignment(g, p.assignment, k)
    assert sum(p.loads()) == g.total_node_weight()


@given(
    n=st.integers(min_value=4, max_value=40),
    seed=st.integers(min_value=0, max_value=10**6),
    logk=st.integers(min_value=0, max_value=3),
)
@settings(max_examples=20, deadline=None)
def test_pagrid_valid_on_hypercubes(n, seed, logk):
    k = 2**logk
    g = random_connected_graph(n, seed=seed)
    p = PaGridLikePartitioner(ProcessorGraph.hypercube(k), seed=0).partition(g, k)
    validate_assignment(g, p.assignment, k)


@given(
    n=st.integers(min_value=2, max_value=30),
    seed=st.integers(min_value=0, max_value=10**6),
    k=st.integers(min_value=2, max_value=5),
    wseed=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=25, deadline=None)
def test_metis_balance_with_weights(n, seed, k, wseed):
    """The multilevel driver keeps weighted load within tolerance + one
    max-weight vertex of the target whenever that is achievable."""
    import random as _random

    g = random_connected_graph(n, seed=seed)
    rng = _random.Random(wseed)
    weights = [rng.randint(1, 5) for _ in range(n)]
    g = g.with_node_weights(weights)
    p = MetisLikePartitioner(seed=0, trials=1).partition(g, k)
    target = g.total_node_weight() / k
    # Lumpy weights make exact balance a bin-packing problem; allow two
    # max-weight vertices of slack above the tolerance band.
    assert max(p.loads()) <= target * 1.05 + 2 * max(weights) + 1e-9
