"""Tests for the band partitioners."""

from __future__ import annotations

import pytest

from repro.graphs import HexGrid
from repro.partitioning import (
    ColumnBandPartitioner,
    RectangularPartitioner,
    RowBandPartitioner,
    balanced_factor_pair,
)


@pytest.fixture(scope="module")
def grid8():
    return HexGrid(8, 8)


@pytest.fixture(scope="module")
def graph8(grid8):
    return grid8.to_graph()


class TestFactorPair:
    @pytest.mark.parametrize(
        "n,expected",
        [(1, (1, 1)), (2, (1, 2)), (4, (2, 2)), (6, (2, 3)), (12, (3, 4)),
         (16, (4, 4)), (7, (1, 7)), (36, (6, 6))],
    )
    def test_pairs(self, n, expected):
        assert balanced_factor_pair(n) == expected

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            balanced_factor_pair(0)


class TestRowBand:
    def test_rows_stay_together(self, grid8, graph8):
        p = RowBandPartitioner(8, 8).partition(graph8, 4)
        for row in range(8):
            owners = {p.owner(grid8.gid(row, c)) for c in range(8)}
            assert len(owners) == 1

    def test_bands_are_contiguous_and_ordered(self, grid8, graph8):
        p = RowBandPartitioner(8, 8).partition(graph8, 4)
        band_of_row = [p.owner(grid8.gid(r, 0)) for r in range(8)]
        assert band_of_row == sorted(band_of_row)
        assert band_of_row == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_balanced(self, graph8):
        p = RowBandPartitioner(8, 8).partition(graph8, 4)
        assert p.loads() == [16, 16, 16, 16]

    def test_more_parts_than_rows(self, graph8):
        p = RowBandPartitioner(8, 8).partition(graph8, 16)
        # only 8 rows -> at most 8 bands used
        assert len({x for x in p.assignment}) == 8

    def test_wrong_graph_size_rejected(self, graph8):
        with pytest.raises(ValueError):
            RowBandPartitioner(4, 4).partition(graph8, 2)

    def test_invalid_grid_rejected(self):
        with pytest.raises(ValueError):
            RowBandPartitioner(0, 4)


class TestColumnBand:
    def test_columns_stay_together(self, grid8, graph8):
        p = ColumnBandPartitioner(8, 8).partition(graph8, 4)
        for col in range(8):
            owners = {p.owner(grid8.gid(r, col)) for r in range(8)}
            assert len(owners) == 1

    def test_balanced(self, graph8):
        p = ColumnBandPartitioner(8, 8).partition(graph8, 2)
        assert p.loads() == [32, 32]

    def test_nonsquare_grid(self):
        grid = HexGrid(4, 12)
        g = grid.to_graph()
        p = ColumnBandPartitioner(4, 12).partition(g, 3)
        assert p.loads() == [16, 16, 16]


class TestRectangular:
    def test_blocks_are_rectangles(self, grid8, graph8):
        p = RectangularPartitioner(8, 8).partition(graph8, 4)
        # 2x2 arrangement: each part owns a 4x4 block.
        assert p.loads() == [16, 16, 16, 16]
        owners = {
            (r // 4, c // 4): p.owner(grid8.gid(r, c))
            for r in range(8)
            for c in range(8)
        }
        assert len(set(owners.values())) == 4

    def test_lower_cut_than_bands_at_16(self):
        grid = HexGrid(32, 32)
        g = grid.to_graph()
        rect = RectangularPartitioner(32, 32).partition(g, 16)
        row = RowBandPartitioner(32, 32).partition(g, 16)
        col = ColumnBandPartitioner(32, 32).partition(g, 16)
        assert rect.edge_cut() < row.edge_cut()
        assert rect.edge_cut() < col.edge_cut()

    def test_prime_parts_degrade_to_bands(self, graph8):
        p = RectangularPartitioner(8, 8).partition(graph8, 7)
        assert sum(p.loads()) == 64

    def test_orients_with_grid(self):
        grid = HexGrid(4, 16)
        g = grid.to_graph()
        p = RectangularPartitioner(4, 16).partition(g, 8)
        # 8 = 2x4 should orient 2 bands along rows (4) and 4 along cols (16)
        assert p.imbalance() == 1.0
