"""Tests for the baseline partitioners."""

from __future__ import annotations

import pytest

from repro.graphs import hex32, hex64, random_connected_graph
from repro.partitioning import (
    BfsGreedyPartitioner,
    RandomPartitioner,
    RoundRobinPartitioner,
)


class TestRoundRobin:
    def test_pattern(self, small_path):
        p = RoundRobinPartitioner().partition(small_path, 3)
        assert p.assignment == (0, 1, 2, 0, 1, 2)

    def test_balanced_node_counts(self, hex64_graph):
        p = RoundRobinPartitioner().partition(hex64_graph, 4)
        assert p.loads() == [16, 16, 16, 16]

    def test_cuts_almost_everything_on_path(self, small_path):
        p = RoundRobinPartitioner().partition(small_path, 2)
        assert p.edge_cut() == small_path.num_edges


class TestRandom:
    def test_deterministic_given_seed(self, hex64_graph):
        a = RandomPartitioner(seed=3).partition(hex64_graph, 4)
        b = RandomPartitioner(seed=3).partition(hex64_graph, 4)
        assert a.assignment == b.assignment

    def test_different_seeds_differ(self, hex64_graph):
        a = RandomPartitioner(seed=3).partition(hex64_graph, 4)
        b = RandomPartitioner(seed=4).partition(hex64_graph, 4)
        assert a.assignment != b.assignment

    def test_node_counts_balanced(self, hex64_graph):
        p = RandomPartitioner(seed=0).partition(hex64_graph, 4)
        assert p.loads() == [16, 16, 16, 16]

    def test_more_parts_than_nodes(self):
        g = random_connected_graph(3, seed=0)
        p = RandomPartitioner(seed=0).partition(g, 5)
        assert len(set(p.assignment)) == 3


class TestBfsGreedy:
    @pytest.mark.parametrize("k", [2, 3, 4, 8])
    def test_covers_and_balances(self, hex64_graph, k):
        p = BfsGreedyPartitioner(seed=1).partition(hex64_graph, k)
        loads = p.loads()
        assert sum(loads) == 64
        assert max(loads) <= 64 / k * 1.5

    def test_beats_round_robin_on_mesh(self, hex64_graph):
        greedy = BfsGreedyPartitioner(seed=1).partition(hex64_graph, 4)
        rr = RoundRobinPartitioner().partition(hex64_graph, 4)
        assert greedy.edge_cut() < rr.edge_cut()

    def test_parts_mostly_connected_on_mesh(self, hex32_graph):
        p = BfsGreedyPartitioner(seed=1).partition(hex32_graph, 4)
        # BFS growth produces connected regions; the last part absorbs
        # whatever remains and may be fragmented.
        connected = 0
        for part in range(4):
            nodes = p.nodes_of(part)
            if not nodes:
                continue
            sub, _ = hex32_graph.subgraph(nodes)
            connected += sub.is_connected()
        assert connected >= 3

    def test_weighted_nodes_balanced_by_weight(self):
        g = random_connected_graph(20, seed=2).with_node_weights(
            [5 if gid <= 4 else 1 for gid in range(1, 21)]
        )
        p = BfsGreedyPartitioner(seed=1).partition(g, 2)
        loads = p.loads()
        assert abs(loads[0] - loads[1]) <= 8

    def test_single_node_graph(self):
        g = random_connected_graph(1, seed=0)
        p = BfsGreedyPartitioner().partition(g, 2)
        assert p.assignment[0] in (0, 1)

    def test_handles_star_graph(self):
        from repro.graphs import star_graph

        p = BfsGreedyPartitioner(seed=0).partition(star_graph(9), 2)
        assert sum(p.loads()) == 10
