"""Tests for the Partition result type and partitioner base."""

from __future__ import annotations

import pytest

from repro.graphs import Graph
from repro.partitioning import Partition, RoundRobinPartitioner


@pytest.fixture
def path4() -> Graph:
    return Graph.from_edges(4, [(1, 2), (2, 3), (3, 4)])


class TestPartition:
    def test_from_assignment(self, path4):
        p = Partition.from_assignment(path4, [0, 0, 1, 1], 2, method="manual")
        assert p.assignment == (0, 0, 1, 1)
        assert p.method == "manual"

    def test_validation_runs_at_construction(self, path4):
        with pytest.raises(ValueError):
            Partition.from_assignment(path4, [0, 0, 5, 1], 2)
        with pytest.raises(ValueError):
            Partition.from_assignment(path4, [0, 0], 2)

    def test_metrics_delegation(self, path4):
        p = Partition.from_assignment(path4, [0, 0, 1, 1], 2)
        assert p.edge_cut() == 1
        assert p.weighted_edge_cut() == 1
        assert p.communication_volume() == 2
        assert p.loads() == [2, 2]
        assert p.imbalance() == 1.0

    def test_owner_and_nodes_of(self, path4):
        p = Partition.from_assignment(path4, [0, 1, 1, 0], 2)
        assert p.owner(2) == 1
        assert p.nodes_of(0) == [1, 4]
        assert p.nodes_of(1) == [2, 3]

    def test_str_mentions_method_and_cut(self, path4):
        p = Partition.from_assignment(path4, [0, 0, 1, 1], 2, method="x")
        assert "x" in str(p)
        assert "cut=1" in str(p)

    def test_empty_processor_allowed(self, path4):
        p = Partition.from_assignment(path4, [0, 0, 0, 0], 3)
        assert p.loads() == [4, 0, 0]


class TestPartitionerBase:
    def test_nparts_one_shortcut(self, path4):
        p = RoundRobinPartitioner().partition(path4, 1)
        assert set(p.assignment) == {0}

    def test_zero_nparts_rejected(self, path4):
        with pytest.raises(ValueError):
            RoundRobinPartitioner().partition(path4, 0)

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            RoundRobinPartitioner().partition(Graph([]), 2)
