"""Tests for the Jostle-like diffusive partitioner."""

from __future__ import annotations

import pytest

from repro.graphs import hex64, random_connected_graph, validate_assignment
from repro.partitioning import (
    JostleLikePartitioner,
    MetisLikePartitioner,
    RandomPartitioner,
)
from repro.partitioning.jostle import diffusion_flows


class TestDiffusionFlows:
    def test_flat_loads_no_flow(self):
        flows = diffusion_flows([1.0, 1.0], {(0, 1)})
        assert flows[(0, 1)] == pytest.approx(0.0)

    def test_flow_runs_downhill(self):
        flows = diffusion_flows([4.0, 0.0], {(0, 1)})
        assert flows[(0, 1)] > 0

    def test_flow_converges_toward_half_the_gap(self):
        flows = diffusion_flows([4.0, 0.0], {(0, 1)}, rounds=200)
        assert flows[(0, 1)] == pytest.approx(2.0, rel=0.05)

    def test_chain_propagates(self):
        # loads 3-0-0 on a path: flow must reach the far end through the middle
        flows = diffusion_flows([3.0, 0.0, 0.0], {(0, 1), (1, 2)}, rounds=300)
        assert flows[(0, 1)] > flows[(1, 2)] > 0

    def test_isolated_parts_get_nothing(self):
        flows = diffusion_flows([5.0, 1.0, 1.0], {(1, 2)})
        assert (0, 1) not in flows


class TestJostleLike:
    @pytest.mark.parametrize("k", [2, 4, 8])
    def test_valid_and_reasonably_balanced(self, k):
        g = hex64()
        p = JostleLikePartitioner(seed=1).partition(g, k)
        validate_assignment(g, p.assignment, k)
        assert p.imbalance() <= 1.5

    def test_better_cut_than_random(self):
        g = hex64()
        jostle = JostleLikePartitioner(seed=1).partition(g, 4)
        rand = RandomPartitioner(seed=1).partition(g, 4)
        assert jostle.edge_cut() < rand.edge_cut()

    def test_same_league_as_metis(self):
        g = random_connected_graph(64, 4.0, seed=2)
        jostle = JostleLikePartitioner(seed=1).partition(g, 4)
        metis = MetisLikePartitioner(seed=1).partition(g, 4)
        assert jostle.edge_cut() <= 2.0 * metis.edge_cut()

    def test_deterministic(self):
        g = random_connected_graph(48, 4.0, seed=5)
        a = JostleLikePartitioner(seed=3).partition(g, 4)
        b = JostleLikePartitioner(seed=3).partition(g, 4)
        assert a.assignment == b.assignment

    def test_weighted_nodes_balanced_by_weight(self):
        g = hex64().with_node_weights(
            [8 if gid <= 8 else 1 for gid in range(1, 65)]
        )
        p = JostleLikePartitioner(seed=1).partition(g, 4)
        loads = p.loads()
        mean = sum(loads) / 4
        assert max(loads) <= mean * 1.6

    def test_single_part(self):
        g = random_connected_graph(10, seed=0)
        assert set(JostleLikePartitioner().partition(g, 1).assignment) == {0}

    def test_runs_on_platform(self):
        from repro.apps import make_average_fn
        from repro.core import PlatformConfig, run_platform
        from repro.mpi import IDEAL

        g = hex64()
        p = JostleLikePartitioner(seed=1).partition(g, 4)
        result = run_platform(
            g, make_average_fn(0.0), p,
            config=PlatformConfig(iterations=3), machine=IDEAL, init_value=float,
        )
        assert len(result.values) == 64
