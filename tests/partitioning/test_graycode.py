"""Tests for the gray-code mesh-to-hypercube embedding."""

from __future__ import annotations

import pytest

from repro.graphs import HexGrid, grid2d
from repro.partitioning import GrayCodePartitioner, gray_code, gray_decode


class TestGrayCode:
    @pytest.mark.parametrize("n", range(64))
    def test_decode_inverts_encode(self, n):
        assert gray_decode(gray_code(n)) == n

    def test_consecutive_codes_differ_in_one_bit(self):
        for n in range(255):
            diff = gray_code(n) ^ gray_code(n + 1)
            assert diff and diff & (diff - 1) == 0  # single bit

    def test_known_prefix(self):
        assert [gray_code(i) for i in range(8)] == [0, 1, 3, 2, 6, 7, 5, 4]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gray_code(-1)
        with pytest.raises(ValueError):
            gray_decode(-1)


class TestGrayCodePartitioner:
    def test_adjacent_mesh_cells_land_on_hypercube_neighbors(self):
        """The embedding's defining property: stepping one cell in either
        mesh axis flips exactly one processor-address bit."""
        rows = cols = 8
        g = grid2d(rows, cols)
        p = GrayCodePartitioner(rows, cols).partition(g, 16)
        for u, v in g.edges():
            pu, pv = p.owner(u), p.owner(v)
            diff = pu ^ pv
            assert diff != 0, f"mesh neighbours {u},{v} on same processor"
            assert diff & (diff - 1) == 0, "not a hypercube neighbour"

    def test_scatters_hex_neighbors(self):
        grid = HexGrid(16, 16)
        g = grid.to_graph()
        p = GrayCodePartitioner(16, 16).partition(g, 16)
        # "a hex and its six neighbors are allocated to different processors"
        # holds for the 4 axis-aligned directions; diagonals may coincide.
        cut_fraction = p.edge_cut() / g.num_edges
        assert cut_fraction > 0.9

    def test_balanced(self):
        grid = HexGrid(32, 32)
        g = grid.to_graph()
        p = GrayCodePartitioner(32, 32).partition(g, 16)
        assert p.imbalance() == 1.0

    def test_rejects_non_power_of_two(self):
        g = HexGrid(4, 4).to_graph()
        with pytest.raises(ValueError, match="power-of-two"):
            GrayCodePartitioner(4, 4).partition(g, 6)

    def test_rejects_wrong_graph_size(self):
        g = HexGrid(4, 4).to_graph()
        with pytest.raises(ValueError):
            GrayCodePartitioner(8, 8).partition(g, 4)

    def test_nparts_one(self):
        g = HexGrid(4, 4).to_graph()
        p = GrayCodePartitioner(4, 4).partition(g, 1)
        assert set(p.assignment) == {0}

    def test_two_procs_split_by_one_axis(self):
        g = grid2d(4, 4)
        p = GrayCodePartitioner(4, 4).partition(g, 2)
        assert set(p.assignment) == {0, 1}
        assert p.imbalance() == 1.0

    def test_uses_all_processors(self):
        grid = HexGrid(32, 32)
        g = grid.to_graph()
        p = GrayCodePartitioner(32, 32).partition(g, 16)
        assert len(set(p.assignment)) == 16
