"""Tests for spectral bisection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import Graph, grid2d, hex64, random_connected_graph
from repro.partitioning import (
    MetisLikePartitioner,
    RandomPartitioner,
    SpectralPartitioner,
    fiedler_vector,
)


class TestFiedlerVector:
    def test_orthogonal_to_constant(self):
        g = random_connected_graph(20, seed=1)
        fv = fiedler_vector(g)
        assert abs(fv.sum()) < 1e-8

    def test_separates_barbell(self):
        # two triangles joined by one edge: the Fiedler vector's sign
        # separates them.
        g = Graph.from_edges(
            6, [(1, 2), (2, 3), (1, 3), (4, 5), (5, 6), (4, 6), (3, 4)]
        )
        fv = fiedler_vector(g)
        left = {np.sign(fv[i]) for i in (0, 1, 2)}
        right = {np.sign(fv[i]) for i in (3, 4, 5)}
        assert left != right

    def test_needs_two_nodes(self):
        with pytest.raises(ValueError):
            fiedler_vector(Graph([[]]))

    def test_path_graph_is_monotone(self):
        from repro.graphs import path_graph

        fv = fiedler_vector(path_graph(10))
        diffs = np.diff(fv)
        assert (diffs > 0).all() or (diffs < 0).all()


class TestSpectralPartitioner:
    @pytest.mark.parametrize("k", [2, 3, 4, 8])
    def test_valid_and_balanced(self, k):
        g = hex64()
        p = SpectralPartitioner(seed=0).partition(g, k)
        assert sum(p.loads()) == 64
        assert p.imbalance() <= 1.4

    def test_grid_bisection_is_clean(self):
        g = grid2d(8, 8)
        p = SpectralPartitioner(seed=0).partition(g, 2)
        # optimal bisection of an 8x8 grid cuts 8 edges; spectral + FM
        # should come close.
        assert p.edge_cut() <= 12

    def test_beats_random(self):
        g = hex64()
        spectral = SpectralPartitioner(seed=0).partition(g, 4)
        rand = RandomPartitioner(seed=0).partition(g, 4)
        assert spectral.edge_cut() < rand.edge_cut()

    def test_comparable_to_metis(self):
        g = hex64()
        spectral = SpectralPartitioner(seed=0).partition(g, 4)
        metis = MetisLikePartitioner(seed=0).partition(g, 4)
        assert spectral.edge_cut() <= 2 * metis.edge_cut()

    def test_without_refinement(self):
        g = hex64()
        p = SpectralPartitioner(seed=0, refine=False).partition(g, 2)
        assert sum(p.loads()) == 64

    def test_deterministic(self):
        g = random_connected_graph(40, seed=4)
        a = SpectralPartitioner(seed=1).partition(g, 4)
        b = SpectralPartitioner(seed=1).partition(g, 4)
        assert a.assignment == b.assignment

    def test_single_part(self):
        g = random_connected_graph(10, seed=0)
        p = SpectralPartitioner().partition(g, 1)
        assert set(p.assignment) == {0}

    def test_two_node_graph(self):
        g = Graph.from_edges(2, [(1, 2)])
        p = SpectralPartitioner().partition(g, 2)
        assert sorted(p.assignment) == [0, 1]
