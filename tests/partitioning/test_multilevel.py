"""Tests for the multilevel k-way machinery (matching, coarsening,
initial partitioning, refinement, and the Metis-like driver)."""

from __future__ import annotations

import random

import pytest

from repro.graphs import Graph, edge_cut, hex64, random_connected_graph, star_graph
from repro.partitioning import (
    MetisLikePartitioner,
    RandomPartitioner,
    RoundRobinPartitioner,
)
from repro.partitioning.multilevel import (
    coarsen,
    contract,
    fm_refine,
    greedy_bisection,
    heavy_edge_matching,
    move_gains,
    random_matching,
    rebalance,
    recursive_bisection,
)


@pytest.fixture
def rng():
    return random.Random(42)


def _check_matching(graph: Graph, match: list[int]) -> None:
    for gid in graph.nodes():
        partner = match[gid - 1]
        assert 1 <= partner <= graph.num_nodes
        assert match[partner - 1] == gid, "matching must be symmetric"
        if partner != gid:
            assert graph.has_edge(gid, partner), "matched pairs must be adjacent"


class TestMatching:
    @pytest.mark.parametrize("matcher", [heavy_edge_matching, random_matching])
    def test_valid_matching(self, matcher, rng):
        g = random_connected_graph(40, seed=5)
        _check_matching(g, matcher(g, rng))

    def test_heavy_edge_prefers_heavy(self, rng):
        g = Graph.from_edges(
            4, [(1, 2), (1, 3), (1, 4)], edge_weights={(1, 3): 100}
        )
        match = heavy_edge_matching(g, rng)
        assert match[0] == 3 and match[2] == 1

    def test_isolated_vertex_stays_single(self, rng):
        g = Graph([[2], [1], []])
        match = heavy_edge_matching(g, rng)
        assert match[2] == 3

    def test_matching_on_star_leaves_most_single(self, rng):
        g = star_graph(6)
        match = heavy_edge_matching(g, rng)
        matched = sum(1 for gid in g.nodes() if match[gid - 1] != gid)
        assert matched == 2  # hub pairs with exactly one leaf


class TestContract:
    def test_weights_conserved(self, rng):
        g = random_connected_graph(30, seed=1).with_node_weights(
            [((i * 7) % 5) + 1 for i in range(30)]
        )
        level = contract(g, heavy_edge_matching(g, rng))
        assert level.graph.total_node_weight() == g.total_node_weight()

    def test_projection_preserves_cut(self, rng):
        """A coarse partition's weighted cut equals the projected fine cut --
        the invariant multilevel partitioning rests on."""
        g = random_connected_graph(40, seed=2)
        level = contract(g, heavy_edge_matching(g, rng))
        coarse_assignment = [
            cid % 3 for cid in range(1, level.graph.num_nodes + 1)
        ]
        fine_assignment = level.project(coarse_assignment)
        from repro.graphs import weighted_edge_cut

        assert weighted_edge_cut(level.graph, coarse_assignment) == weighted_edge_cut(
            g, fine_assignment
        )

    def test_shrinks_graph(self, rng):
        g = hex64()
        level = contract(g, heavy_edge_matching(g, rng))
        assert level.graph.num_nodes < g.num_nodes
        assert level.graph.num_nodes >= g.num_nodes // 2

    def test_inconsistent_matching_rejected(self):
        g = Graph.from_edges(3, [(1, 2), (2, 3)])
        with pytest.raises(ValueError):
            contract(g, [2, 3, 2])  # not symmetric

    def test_wrong_length_rejected(self):
        g = Graph.from_edges(2, [(1, 2)])
        with pytest.raises(ValueError):
            contract(g, [1])


class TestCoarsen:
    def test_ladder_reaches_target(self, rng):
        g = random_connected_graph(120, seed=3)
        levels = coarsen(g, min_nodes=20, rng=rng)
        assert levels
        assert levels[-1].graph.num_nodes <= 40  # within a factor of target

    def test_small_graph_no_levels(self, rng):
        g = random_connected_graph(10, seed=0)
        assert coarsen(g, min_nodes=20, rng=rng) == []

    def test_monotone_shrinkage(self, rng):
        g = random_connected_graph(100, seed=4)
        levels = coarsen(g, min_nodes=10, rng=rng)
        sizes = [g.num_nodes] + [lv.graph.num_nodes for lv in levels]
        assert all(a > b for a, b in zip(sizes, sizes[1:]))


class TestRefine:
    def test_move_gains_signs(self):
        g = Graph.from_edges(4, [(1, 2), (2, 3), (3, 4)])
        assignment = [0, 0, 1, 1]
        gains = move_gains(g, assignment, 2)
        # moving node 2 to part 1: gains edge (2,3), loses edge (1,2) -> 0
        assert gains == {1: 0}

    def test_fm_never_worsens_cut(self, rng):
        g = random_connected_graph(50, seed=6)
        assignment = list(RandomPartitioner(seed=1).partition(g, 4).assignment)
        before = edge_cut(g, assignment)
        targets = [g.total_node_weight() / 4] * 4
        fm_refine(g, assignment, 4, targets, rng)
        assert edge_cut(g, assignment) <= before

    def test_fm_improves_random_partition(self, rng):
        g = hex64()
        assignment = list(RandomPartitioner(seed=1).partition(g, 4).assignment)
        before = edge_cut(g, assignment)
        fm_refine(g, assignment, 4, [16.0] * 4, rng)
        assert edge_cut(g, assignment) < before

    def test_fm_respects_balance_cap(self, rng):
        g = random_connected_graph(40, seed=7)
        assignment = list(RoundRobinPartitioner().partition(g, 4).assignment)
        fm_refine(g, assignment, 4, [10.0] * 4, rng, tolerance=1.1)
        loads = [assignment.count(p) for p in range(4)]
        assert max(loads) <= 11

    def test_rebalance_fixes_overload(self, rng):
        g = random_connected_graph(40, seed=8)
        assignment = [0] * 40  # everything on one part
        rebalance(g, assignment, 4, [10.0] * 4, rng)
        loads = [assignment.count(p) for p in range(4)]
        assert max(loads) <= 11

    def test_fm_wrong_targets_rejected(self, rng):
        g = random_connected_graph(10, seed=0)
        with pytest.raises(ValueError):
            fm_refine(g, [0] * 10, 2, [5.0], rng)


class TestInitial:
    def test_bisection_balance(self, rng):
        g = random_connected_graph(60, seed=9)
        assignment = greedy_bisection(g, 0.5, rng)
        loads = [assignment.count(0), assignment.count(1)]
        assert abs(loads[0] - loads[1]) <= 8

    def test_bisection_asymmetric_fraction(self, rng):
        g = random_connected_graph(60, seed=10)
        assignment = greedy_bisection(g, 0.25, rng)
        assert 9 <= assignment.count(0) <= 21

    def test_bisection_rejects_bad_fraction(self, rng):
        g = random_connected_graph(10, seed=0)
        with pytest.raises(ValueError):
            greedy_bisection(g, 0.0, rng)

    @pytest.mark.parametrize("k", [2, 3, 4, 5, 8])
    def test_recursive_bisection_covers_all_parts(self, rng, k):
        g = random_connected_graph(64, seed=11)
        assignment = recursive_bisection(g, k, rng)
        assert set(assignment) == set(range(k))

    def test_recursive_bisection_proportions(self, rng):
        g = random_connected_graph(60, seed=12)
        assignment = recursive_bisection(g, 2, rng, proportions=[3.0, 1.0])
        assert assignment.count(0) > assignment.count(1)

    def test_recursive_bisection_rejects_bad_proportions(self, rng):
        g = random_connected_graph(10, seed=0)
        with pytest.raises(ValueError):
            recursive_bisection(g, 2, rng, proportions=[1.0])
        with pytest.raises(ValueError):
            recursive_bisection(g, 2, rng, proportions=[1.0, -1.0])


class TestMetisLike:
    @pytest.mark.parametrize("k", [2, 3, 4, 7, 8, 16])
    def test_valid_and_balanced(self, k):
        g = hex64()
        p = MetisLikePartitioner(seed=1).partition(g, k)
        assert set(p.assignment) <= set(range(k))
        assert p.imbalance() <= 1.35

    def test_beats_baselines_on_mesh(self):
        g = hex64()
        metis = MetisLikePartitioner(seed=1).partition(g, 8)
        rr = RoundRobinPartitioner().partition(g, 8)
        rand = RandomPartitioner(seed=1).partition(g, 8)
        assert metis.edge_cut() < rr.edge_cut() * 0.6
        assert metis.edge_cut() < rand.edge_cut() * 0.6

    def test_deterministic(self):
        g = random_connected_graph(64, seed=13)
        a = MetisLikePartitioner(seed=5).partition(g, 8)
        b = MetisLikePartitioner(seed=5).partition(g, 8)
        assert a.assignment == b.assignment

    def test_more_trials_never_hurts(self):
        g = random_connected_graph(64, seed=14)
        one = MetisLikePartitioner(seed=5, trials=1).partition(g, 8)
        four = MetisLikePartitioner(seed=5, trials=4).partition(g, 8)
        assert four.edge_cut() <= one.edge_cut()

    def test_proportional_partitioning(self):
        g = hex64()
        p = MetisLikePartitioner(seed=1, proportions=[3, 1]).partition(g, 2)
        loads = p.loads()
        assert loads[0] > 2 * loads[1]

    def test_random_matching_variant(self):
        g = hex64()
        p = MetisLikePartitioner(seed=1, matching="random").partition(g, 4)
        assert p.imbalance() <= 1.35

    def test_invalid_matching_rejected(self):
        with pytest.raises(ValueError):
            MetisLikePartitioner(matching="bogus")

    def test_invalid_trials_rejected(self):
        with pytest.raises(ValueError):
            MetisLikePartitioner(trials=0)

    def test_weighted_nodes_balanced_by_weight(self):
        g = hex64().with_node_weights([10 if gid <= 8 else 1 for gid in range(1, 65)])
        p = MetisLikePartitioner(seed=1).partition(g, 4)
        loads = p.loads()
        mean = sum(loads) / 4
        assert max(loads) <= mean * 1.35

    def test_handles_tree(self):
        from repro.graphs import binary_tree

        g = binary_tree(5)  # 63 nodes
        p = MetisLikePartitioner(seed=2).partition(g, 4)
        assert p.imbalance() <= 1.4
        assert p.edge_cut() <= 12

    def test_nparts_equal_nodes(self):
        g = random_connected_graph(8, seed=0)
        p = MetisLikePartitioner(seed=1).partition(g, 8)
        loads = p.loads()
        assert sum(loads) == 8
        assert max(loads) <= 2  # single-vertex headroom above the target
