"""Tests for hexagonal coordinate arithmetic."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    HexGrid,
    cube_distance,
    cube_range,
    cube_ring,
    cube_to_offset,
    hex_distance,
    hex_line,
    hexes_within,
    offset_to_cube,
)

coords = st.tuples(
    st.integers(min_value=0, max_value=30), st.integers(min_value=0, max_value=30)
)


class TestConversions:
    @given(coords)
    @settings(max_examples=100, deadline=None)
    def test_roundtrip(self, rc):
        assert cube_to_offset(offset_to_cube(*rc)) == rc

    @given(coords)
    @settings(max_examples=50, deadline=None)
    def test_cube_components_sum_to_zero(self, rc):
        x, y, z = offset_to_cube(*rc)
        assert x + y + z == 0

    def test_invalid_cube_rejected(self):
        with pytest.raises(ValueError):
            cube_to_offset((1, 1, 1))


class TestDistance:
    def test_self_distance_zero(self):
        assert hex_distance((3, 4), (3, 4)) == 0

    def test_neighbors_are_distance_one(self):
        grid = HexGrid(8, 8)
        for nr, nc in grid.neighbor_cells(4, 4):
            assert hex_distance((4, 4), (nr, nc)) == 1

    def test_non_neighbors_farther(self):
        assert hex_distance((0, 0), (0, 5)) == 5
        assert hex_distance((0, 0), (4, 0)) == 4

    @given(coords, coords)
    @settings(max_examples=60, deadline=None)
    def test_symmetric(self, a, b):
        assert hex_distance(a, b) == hex_distance(b, a)

    @given(coords, coords, coords)
    @settings(max_examples=60, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        assert hex_distance(a, c) <= hex_distance(a, b) + hex_distance(b, c)

    def test_matches_graph_shortest_path(self):
        """Cube distance equals BFS hops on the hex graph (interior)."""
        import networkx as nx

        grid = HexGrid(9, 9)
        g = grid.to_graph().to_networkx()
        source = grid.gid(4, 4)
        lengths = nx.single_source_shortest_path_length(g, source)
        for row in range(9):
            for col in range(9):
                expected = hex_distance((4, 4), (row, col))
                assert lengths[grid.gid(row, col)] == expected


class TestRingsAndRanges:
    @pytest.mark.parametrize("radius,count", [(0, 1), (1, 6), (2, 12), (3, 18)])
    def test_ring_sizes(self, radius, count):
        center = offset_to_cube(10, 10)
        ring = cube_ring(center, radius)
        assert len(ring) == count
        assert all(cube_distance(center, c) == radius for c in ring)

    def test_ring_negative_radius(self):
        with pytest.raises(ValueError):
            cube_ring((0, 0, 0), -1)

    @pytest.mark.parametrize("radius", [0, 1, 2, 4])
    def test_range_is_union_of_rings(self, radius):
        center = offset_to_cube(10, 10)
        cells = set(cube_range(center, radius))
        assert len(cells) == 1 + 3 * radius * (radius + 1)
        assert all(cube_distance(center, c) <= radius for c in cells)

    def test_hexes_within_clips_to_bounds(self):
        cells = hexes_within((0, 0), 2, rows=8, cols=8)
        assert (0, 0) in cells
        assert all(0 <= r < 8 and 0 <= c < 8 for r, c in cells)
        assert len(cells) < 19  # corner: part of the disc is off-board


class TestHexLine:
    def test_endpoints_included(self):
        line = hex_line((0, 0), (4, 4))
        assert line[0] == (0, 0)
        assert line[-1] == (4, 4)

    def test_length_is_distance_plus_one(self):
        a, b = (2, 1), (7, 9)
        assert len(hex_line(a, b)) == hex_distance(a, b) + 1

    def test_consecutive_cells_adjacent(self):
        line = hex_line((0, 0), (6, 3))
        for u, v in zip(line, line[1:]):
            assert hex_distance(u, v) == 1

    def test_degenerate_line(self):
        assert hex_line((3, 3), (3, 3)) == [(3, 3)]
