"""Tests for hexagonal grids."""

from __future__ import annotations

import pytest

from repro.graphs import HexGrid, battlefield_grid, hex32, hex64, hex96, hex_grid


class TestHexGrid:
    def test_dimensions_validated(self):
        with pytest.raises(ValueError):
            HexGrid(0, 5)
        with pytest.raises(ValueError):
            HexGrid(3, -1)

    def test_num_cells(self):
        assert HexGrid(4, 8).num_cells == 32

    def test_gid_rc_roundtrip(self):
        grid = HexGrid(5, 7)
        for row in range(5):
            for col in range(7):
                assert grid.rc(grid.gid(row, col)) == (row, col)

    def test_gid_is_row_major_one_based(self):
        grid = HexGrid(3, 4)
        assert grid.gid(0, 0) == 1
        assert grid.gid(0, 3) == 4
        assert grid.gid(1, 0) == 5
        assert grid.gid(2, 3) == 12

    def test_out_of_bounds_raises(self):
        grid = HexGrid(2, 2)
        with pytest.raises(KeyError):
            grid.gid(2, 0)
        with pytest.raises(KeyError):
            grid.rc(5)
        with pytest.raises(KeyError):
            grid.rc(0)

    def test_interior_cell_has_six_neighbors(self):
        grid = HexGrid(5, 5)
        assert len(grid.neighbor_cells(2, 2)) == 6

    def test_corner_cells_have_fewer_neighbors(self):
        grid = HexGrid(5, 5)
        for r, c in ((0, 0), (0, 4), (4, 0), (4, 4)):
            assert 2 <= len(grid.neighbor_cells(r, c)) <= 4

    def test_neighbors_symmetric(self):
        grid = HexGrid(6, 6)
        for r in range(6):
            for c in range(6):
                for nr, nc in grid.neighbor_cells(r, c):
                    assert (r, c) in grid.neighbor_cells(nr, nc)

    def test_even_and_odd_rows_differ(self):
        grid = HexGrid(4, 4)
        even = set(grid.neighbor_cells(2, 2))
        odd = set(grid.neighbor_cells(1, 2))
        # Offset rows shift diagonals to opposite sides.
        assert even != odd

    def test_neighbor_directions_indices(self):
        grid = HexGrid(5, 5)
        dirs = grid.neighbor_directions(2, 2)
        assert [d for d, _ in dirs] == [0, 1, 2, 3, 4, 5]
        assert {cell for _, cell in dirs} == set(grid.neighbor_cells(2, 2))


class TestHexGraphs:
    @pytest.mark.parametrize(
        "factory,expected_nodes",
        [(hex32, 32), (hex64, 64), (hex96, 96)],
    )
    def test_paper_grids(self, factory, expected_nodes):
        g = factory()
        assert g.num_nodes == expected_nodes
        assert g.is_connected()
        assert g.max_degree() == 6

    def test_hex_grid_function(self):
        g = hex_grid(3, 5)
        assert g.num_nodes == 15

    def test_graph_matches_cell_adjacency(self):
        grid = HexGrid(4, 4)
        g = grid.to_graph()
        for row in range(4):
            for col in range(4):
                gid = grid.gid(row, col)
                expected = sorted(
                    grid.gid(nr, nc) for nr, nc in grid.neighbor_cells(row, col)
                )
                assert list(g.neighbors(gid)) == expected

    def test_battlefield_grid_default(self):
        grid = battlefield_grid()
        assert (grid.rows, grid.cols) == (32, 32)
        g = grid.to_graph()
        assert g.num_nodes == 1024
        assert g.is_connected()

    def test_single_cell_grid(self):
        g = hex_grid(1, 1)
        assert g.num_nodes == 1
        assert g.num_edges == 0
