"""Tests for the graph generators."""

from __future__ import annotations

import pytest

from repro.graphs import (
    binary_tree,
    complete_graph,
    cycle_graph,
    grid2d,
    path_graph,
    preferential_attachment,
    random32,
    random64,
    random_connected_graph,
    star_graph,
    torus2d,
)


class TestRandomConnected:
    @pytest.mark.parametrize("n", [1, 2, 5, 32, 64, 100])
    def test_always_connected(self, n):
        g = random_connected_graph(n, seed=11)
        assert g.num_nodes == n
        assert g.is_connected()

    def test_deterministic_given_seed(self):
        a = random_connected_graph(50, seed=4)
        b = random_connected_graph(50, seed=4)
        assert a == b

    def test_different_seeds_differ(self):
        a = random_connected_graph(50, seed=4)
        b = random_connected_graph(50, seed=5)
        assert a != b

    def test_average_degree_near_target(self):
        g = random_connected_graph(200, avg_degree=6.0, seed=0)
        avg = 2 * g.num_edges / g.num_nodes
        assert 5.0 <= avg <= 6.5

    def test_degree_clamped_by_complete_graph(self):
        g = random_connected_graph(5, avg_degree=100.0, seed=0)
        assert g.num_edges <= 10

    def test_rejects_zero_nodes(self):
        with pytest.raises(ValueError):
            random_connected_graph(0)

    def test_paper_shortcuts(self):
        assert random32().num_nodes == 32
        assert random64().num_nodes == 64


class TestMeshes:
    def test_grid2d_structure(self):
        g = grid2d(3, 4)
        assert g.num_nodes == 12
        assert g.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical
        assert g.is_connected()
        assert g.max_degree() == 4

    def test_grid2d_corner_degree(self):
        g = grid2d(3, 3)
        assert g.degree(1) == 2

    def test_grid2d_rejects_empty(self):
        with pytest.raises(ValueError):
            grid2d(0, 3)

    def test_torus_regular_degree_four(self):
        g = torus2d(4, 5)
        assert all(g.degree(v) == 4 for v in g.nodes())
        assert g.num_edges == 2 * 20

    def test_torus_rejects_small(self):
        with pytest.raises(ValueError):
            torus2d(2, 5)


class TestClassicTopologies:
    def test_path(self):
        g = path_graph(5)
        assert g.num_edges == 4
        assert g.degree(1) == 1
        assert g.degree(3) == 2

    def test_cycle(self):
        g = cycle_graph(6)
        assert all(g.degree(v) == 2 for v in g.nodes())

    def test_cycle_rejects_small(self):
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_star(self):
        g = star_graph(7)
        assert g.num_nodes == 8
        assert g.degree(1) == 7
        assert all(g.degree(v) == 1 for v in range(2, 9))

    def test_complete(self):
        g = complete_graph(6)
        assert g.num_edges == 15
        assert all(g.degree(v) == 5 for v in g.nodes())

    def test_binary_tree(self):
        g = binary_tree(3)
        assert g.num_nodes == 15
        assert g.num_edges == 14
        assert g.is_connected()

    def test_binary_tree_depth_zero(self):
        g = binary_tree(0)
        assert g.num_nodes == 1

    def test_binary_tree_rejects_negative(self):
        with pytest.raises(ValueError):
            binary_tree(-1)


class TestPreferentialAttachment:
    def test_size_and_connectivity(self):
        g = preferential_attachment(60, edges_per_node=2, seed=1)
        assert g.num_nodes == 60
        assert g.is_connected()

    def test_has_skewed_degrees(self):
        g = preferential_attachment(120, edges_per_node=2, seed=3)
        degrees = sorted(g.degree(v) for v in g.nodes())
        assert degrees[-1] >= 3 * degrees[len(degrees) // 2]

    def test_deterministic(self):
        assert preferential_attachment(40, seed=9) == preferential_attachment(40, seed=9)

    def test_rejects_too_few_nodes(self):
        with pytest.raises(ValueError):
            preferential_attachment(2, edges_per_node=2)
