"""Tests for the Graph container."""

from __future__ import annotations

import pytest

from repro.graphs import Graph


@pytest.fixture
def triangle() -> Graph:
    return Graph.from_edges(3, [(1, 2), (2, 3), (1, 3)], name="K3")


class TestConstruction:
    def test_from_edges_basics(self, triangle):
        assert triangle.num_nodes == 3
        assert triangle.num_edges == 3
        assert triangle.neighbors(1) == (2, 3)

    def test_duplicate_edges_collapse(self):
        g = Graph.from_edges(2, [(1, 2), (2, 1), (1, 2)])
        assert g.num_edges == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            Graph.from_edges(2, [(1, 1)])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(ValueError):
            Graph.from_edges(2, [(1, 3)])

    def test_asymmetric_adjacency_rejected(self):
        with pytest.raises(ValueError, match="asymmetric"):
            Graph([[2], []])

    def test_duplicate_neighbour_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Graph([[2, 2], [1, 1]])

    def test_neighbour_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Graph([[5]])

    def test_node_weights_length_checked(self):
        with pytest.raises(ValueError):
            Graph.from_edges(3, [(1, 2)], node_weights=[1, 2])

    def test_empty_graph(self):
        g = Graph([])
        assert g.num_nodes == 0
        assert g.num_edges == 0
        assert g.is_connected()

    def test_networkx_roundtrip(self, triangle):
        nxg = triangle.to_networkx()
        back = Graph.from_networkx(nxg)
        assert back == triangle


class TestQueries:
    def test_degree(self, triangle):
        assert triangle.degree(1) == 2
        assert triangle.max_degree() == 2

    def test_has_edge(self, triangle):
        assert triangle.has_edge(1, 2)
        assert triangle.has_edge(2, 1)

    def test_edges_yield_canonical_order(self, triangle):
        assert sorted(triangle.edges()) == [(1, 2), (1, 3), (2, 3)]

    def test_unknown_node_raises(self, triangle):
        with pytest.raises(KeyError):
            triangle.neighbors(4)
        with pytest.raises(KeyError):
            triangle.node_weight(0)

    def test_node_weights_default_one(self, triangle):
        assert triangle.node_weights == (1, 1, 1)
        assert triangle.total_node_weight() == 3
        assert not triangle.has_node_weights

    def test_custom_node_weights(self):
        g = Graph.from_edges(2, [(1, 2)], node_weights=[5, 7])
        assert g.node_weight(1) == 5
        assert g.total_node_weight() == 12
        assert g.has_node_weights

    def test_edge_weight_default_one(self, triangle):
        assert triangle.edge_weight(1, 2) == 1
        assert not triangle.has_edge_weights

    def test_edge_weight_custom(self):
        g = Graph.from_edges(2, [(1, 2)], edge_weights={(2, 1): 9})
        assert g.edge_weight(1, 2) == 9
        assert g.edge_weight(2, 1) == 9
        assert g.has_edge_weights

    def test_edge_weight_missing_edge_raises(self, triangle):
        g = Graph.from_edges(3, [(1, 2)])
        with pytest.raises(KeyError):
            g.edge_weight(1, 3)

    def test_weight_one_normalized_for_equality(self):
        a = Graph.from_edges(2, [(1, 2)], edge_weights={(1, 2): 1})
        b = Graph.from_edges(2, [(1, 2)])
        assert a == b


class TestStructure:
    def test_connected(self, triangle):
        assert triangle.is_connected()

    def test_disconnected(self):
        g = Graph.from_edges(4, [(1, 2), (3, 4)])
        assert not g.is_connected()
        comps = g.connected_components()
        assert comps == [[1, 2], [3, 4]]

    def test_single_node_connected(self):
        assert Graph([[]]).is_connected()

    def test_bfs_order_starts_at_start(self):
        g = Graph.from_edges(4, [(1, 2), (2, 3), (3, 4)])
        assert g.bfs_order(2) == [2, 1, 3, 4]

    def test_bfs_order_partial_on_disconnected(self):
        g = Graph.from_edges(4, [(1, 2), (3, 4)])
        assert g.bfs_order(1) == [1, 2]


class TestDerivations:
    def test_subgraph_remaps_ids(self):
        g = Graph.from_edges(5, [(1, 2), (2, 3), (3, 4), (4, 5)])
        sub, remap = g.subgraph([2, 3, 5])
        assert sub.num_nodes == 3
        assert remap == {2: 1, 3: 2, 5: 3}
        assert sub.has_edge(1, 2)      # old (2,3)
        assert not sub.has_edge(2, 3)  # old (3,5) absent

    def test_subgraph_keeps_weights(self):
        g = Graph.from_edges(
            3, [(1, 2), (2, 3)], node_weights=[4, 5, 6], edge_weights={(2, 3): 8}
        )
        sub, remap = g.subgraph([2, 3])
        assert sub.node_weight(remap[2] ) == 5
        assert sub.edge_weight(remap[2], remap[3]) == 8

    def test_with_node_weights(self, triangle):
        g = triangle.with_node_weights([3, 3, 3])
        assert g.total_node_weight() == 9
        assert g.num_edges == triangle.num_edges

    def test_equality_and_hash(self, triangle):
        same = Graph.from_edges(3, [(1, 2), (2, 3), (1, 3)])
        assert triangle == same
        assert hash(triangle) == hash(same)
        assert triangle != Graph.from_edges(3, [(1, 2), (2, 3)])

    def test_repr(self, triangle):
        assert "K3" in repr(triangle)
