"""Property-based tests for the graph substrate (hypothesis)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    Graph,
    boundary_nodes,
    communication_volume,
    edge_cut,
    format_chaco,
    parse_chaco,
    part_loads,
    random_connected_graph,
)


@st.composite
def graphs(draw, max_nodes: int = 24):
    """A random connected graph plus optional weights."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    seed = draw(st.integers(min_value=0, max_value=10**6))
    deg = draw(st.floats(min_value=1.0, max_value=6.0))
    g = random_connected_graph(n, avg_degree=deg, seed=seed)
    if draw(st.booleans()):
        weights = draw(
            st.lists(
                st.integers(min_value=1, max_value=9), min_size=n, max_size=n
            )
        )
        g = g.with_node_weights(weights)
    return g


@st.composite
def graph_and_assignment(draw, max_nodes: int = 24, max_parts: int = 6):
    g = draw(graphs(max_nodes=max_nodes))
    nparts = draw(st.integers(min_value=1, max_value=max_parts))
    assignment = draw(
        st.lists(
            st.integers(min_value=0, max_value=nparts - 1),
            min_size=g.num_nodes,
            max_size=g.num_nodes,
        )
    )
    return g, assignment, nparts


@given(graphs())
@settings(max_examples=60, deadline=None)
def test_adjacency_is_symmetric(g: Graph):
    for u in g.nodes():
        for v in g.neighbors(u):
            assert u in g.neighbors(v)


@given(graphs())
@settings(max_examples=60, deadline=None)
def test_handshake_lemma(g: Graph):
    assert sum(g.degree(v) for v in g.nodes()) == 2 * g.num_edges


@given(graphs())
@settings(max_examples=60, deadline=None)
def test_chaco_roundtrip_preserves_graph(g: Graph):
    assert parse_chaco(format_chaco(g), name=g.name) == g


@given(graph_and_assignment())
@settings(max_examples=60, deadline=None)
def test_edge_cut_bounds(data):
    g, assignment, nparts = data
    cut = edge_cut(g, assignment)
    assert 0 <= cut <= g.num_edges


@given(graph_and_assignment())
@settings(max_examples=60, deadline=None)
def test_comm_volume_bounds_cut(data):
    """Each cut edge contributes at most 2 shadow copies; each boundary node
    at least one."""
    g, assignment, nparts = data
    volume = communication_volume(g, assignment)
    cut = edge_cut(g, assignment)
    assert volume <= 2 * cut
    assert volume >= len(boundary_nodes(g, assignment))


@given(graph_and_assignment())
@settings(max_examples=60, deadline=None)
def test_part_loads_conserve_weight(data):
    g, assignment, nparts = data
    assert sum(part_loads(g, assignment, nparts)) == g.total_node_weight()


@given(graphs())
@settings(max_examples=40, deadline=None)
def test_subgraph_of_all_nodes_is_isomorphic(g: Graph):
    sub, remap = g.subgraph(list(g.nodes()))
    assert sub.num_nodes == g.num_nodes
    assert sub.num_edges == g.num_edges
    assert remap == {gid: gid for gid in g.nodes()}


@given(graphs(), st.integers(min_value=0, max_value=10**6))
@settings(max_examples=40, deadline=None)
def test_bfs_reaches_whole_connected_graph(g: Graph, seed: int):
    start = seed % g.num_nodes + 1
    assert sorted(g.bfs_order(start)) == list(g.nodes())
