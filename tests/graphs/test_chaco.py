"""Tests for Chaco graph-format and partition-file I/O."""

from __future__ import annotations

import pytest

from repro.graphs import (
    Graph,
    format_chaco,
    format_partition,
    hex32,
    parse_chaco,
    parse_partition,
    random_connected_graph,
    read_chaco,
    read_partition,
    write_chaco,
    write_partition,
)


@pytest.fixture
def weighted_graph() -> Graph:
    return Graph.from_edges(
        4,
        [(1, 2), (2, 3), (3, 4), (4, 1)],
        node_weights=[2, 1, 3, 1],
        edge_weights={(1, 2): 5, (3, 4): 2},
    )


class TestParsing:
    def test_unweighted_fmt0(self):
        text = "3 2\n2\n1 3\n2\n"
        g = parse_chaco(text)
        assert g.num_nodes == 3
        assert g.num_edges == 2
        assert g.neighbors(2) == (1, 3)

    def test_header_without_fmt_defaults_to_zero(self):
        g = parse_chaco("2 1\n2\n1\n")
        assert not g.has_node_weights

    def test_fmt1_edge_weights(self):
        text = "2 1 1\n2 7\n1 7\n"
        g = parse_chaco(text)
        assert g.edge_weight(1, 2) == 7

    def test_fmt10_vertex_weights(self):
        text = "2 1 10\n4 2\n6 1\n"
        g = parse_chaco(text)
        assert g.node_weight(1) == 4
        assert g.node_weight(2) == 6

    def test_fmt11_both_weights(self):
        text = "2 1 11\n4 2 9\n6 1 9\n"
        g = parse_chaco(text)
        assert g.node_weight(2) == 6
        assert g.edge_weight(1, 2) == 9

    def test_comment_lines_ignored(self):
        g = parse_chaco("% a comment\n2 1\n2\n1\n")
        assert g.num_edges == 1

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            parse_chaco("")

    def test_bad_header_rejected(self):
        with pytest.raises(ValueError):
            parse_chaco("3\n")

    def test_unsupported_fmt_rejected(self):
        with pytest.raises(ValueError, match="fmt"):
            parse_chaco("2 1 7\n2\n1\n")

    def test_vertex_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="vertex lines"):
            parse_chaco("3 1\n2\n1\n")

    def test_edge_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="edges"):
            parse_chaco("2 5\n2\n1\n")

    def test_dangling_edge_weight_rejected(self):
        with pytest.raises(ValueError, match="dangling"):
            parse_chaco("2 1 1\n2\n1 7\n")

    def test_inconsistent_edge_weights_rejected(self):
        with pytest.raises(ValueError, match="inconsistent"):
            parse_chaco("2 1 1\n2 7\n1 8\n")

    def test_asymmetric_chaco_rejected(self):
        with pytest.raises(ValueError):
            parse_chaco("2 1\n2\n\n")


class TestRoundtrips:
    @pytest.mark.parametrize("fmt", [0, None])
    def test_unweighted_roundtrip(self, fmt):
        g = hex32()
        assert parse_chaco(format_chaco(g, fmt=fmt)) == g

    def test_weighted_roundtrip(self, weighted_graph):
        assert parse_chaco(format_chaco(weighted_graph)) == weighted_graph

    def test_auto_fmt_selection(self, weighted_graph):
        text = format_chaco(weighted_graph)
        assert text.splitlines()[0].endswith("11")

    def test_fmt10_when_only_node_weights(self):
        g = Graph.from_edges(2, [(1, 2)], node_weights=[2, 3])
        assert format_chaco(g).splitlines()[0].endswith("10")

    def test_random_graph_roundtrip(self):
        g = random_connected_graph(40, seed=3)
        assert parse_chaco(format_chaco(g)) == g

    def test_explicit_bad_fmt_rejected(self):
        with pytest.raises(ValueError):
            format_chaco(hex32(), fmt=3)

    def test_file_roundtrip(self, tmp_path, weighted_graph):
        path = tmp_path / "graph.chaco"
        write_chaco(weighted_graph, path)
        assert read_chaco(path) == weighted_graph

    def test_read_chaco_names_from_stem(self, tmp_path):
        path = tmp_path / "mymesh.graph"
        write_chaco(hex32(), path)
        assert read_chaco(path).name == "mymesh"


class TestPartitionFiles:
    def test_parse(self):
        assert parse_partition("0\n1\n2\n") == [0, 1, 2]

    def test_blank_lines_skipped(self):
        assert parse_partition("0\n\n1\n") == [0, 1]

    def test_bad_line_reports_position(self):
        with pytest.raises(ValueError, match="line 2"):
            parse_partition("0\nxyz\n")

    def test_format_roundtrip(self):
        assignment = [3, 1, 4, 1, 5]
        assert parse_partition(format_partition(assignment)) == assignment

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "out.part"
        write_partition([0, 1, 0, 1], path)
        assert read_partition(path) == [0, 1, 0, 1]

    def test_read_partition_checks_length(self, tmp_path):
        path = tmp_path / "out.part"
        write_partition([0, 1], path)
        with pytest.raises(ValueError):
            read_partition(path, num_nodes=3)
