"""Tests for the partition-analysis diagnostics."""

from __future__ import annotations

import pytest

from repro.graphs import (
    Graph,
    hex64,
    interface_matrix,
    interface_stats,
    part_connectivity,
    partition_summary,
    surface_to_volume,
)
from repro.partitioning import MetisLikePartitioner, RoundRobinPartitioner


@pytest.fixture
def path6() -> Graph:
    return Graph.from_edges(6, [(1, 2), (2, 3), (3, 4), (4, 5), (5, 6)])


class TestPartConnectivity:
    def test_contiguous_parts(self, path6):
        assert part_connectivity(path6, [0, 0, 0, 1, 1, 1], 2) == [1, 1]

    def test_fragmented_part_detected(self, path6):
        # part 0 owns both ends, part 1 the middle: 0 is split in two.
        assert part_connectivity(path6, [0, 0, 1, 1, 0, 0], 2) == [2, 1]

    def test_empty_part_reports_zero(self, path6):
        assert part_connectivity(path6, [0] * 6, 2) == [1, 0]

    def test_metis_parts_connected_on_mesh(self):
        g = hex64()
        p = MetisLikePartitioner(seed=1).partition(g, 4)
        components = part_connectivity(g, p.assignment, 4)
        assert all(c == 1 for c in components)

    def test_round_robin_parts_fragmented(self, path6):
        components = part_connectivity(path6, [0, 1, 0, 1, 0, 1], 2)
        assert components == [3, 3]


class TestSurfaceToVolume:
    def test_band_partition(self, path6):
        stv = surface_to_volume(path6, [0, 0, 0, 1, 1, 1], 2)
        assert stv == [pytest.approx(1 / 3), pytest.approx(1 / 3)]

    def test_fully_scattered_everything_is_surface(self, path6):
        stv = surface_to_volume(path6, [0, 1, 0, 1, 0, 1], 2)
        assert stv == [1.0, 1.0]

    def test_empty_part_zero(self, path6):
        assert surface_to_volume(path6, [0] * 6, 2)[1] == 0.0

    def test_good_partition_has_lower_ratio(self):
        g = hex64()
        metis = MetisLikePartitioner(seed=1).partition(g, 4)
        rr = RoundRobinPartitioner().partition(g, 4)
        mean = lambda xs: sum(xs) / len(xs)
        assert mean(surface_to_volume(g, metis.assignment, 4)) < mean(
            surface_to_volume(g, rr.assignment, 4)
        )


class TestInterfaces:
    def test_matrix_counts_cut_edges(self, path6):
        matrix = interface_matrix(path6, [0, 0, 1, 1, 2, 2], 3)
        assert matrix[0][1] == matrix[1][0] == 1
        assert matrix[1][2] == matrix[2][1] == 1
        assert matrix[0][2] == 0
        assert matrix[0][0] == 0

    def test_matrix_total_is_twice_the_cut(self):
        g = hex64()
        p = MetisLikePartitioner(seed=1).partition(g, 4)
        matrix = interface_matrix(g, p.assignment, 4)
        assert sum(sum(row) for row in matrix) == 2 * p.edge_cut()

    def test_stats(self, path6):
        stats = interface_stats(path6, [0, 0, 1, 1, 2, 2], 3)
        assert stats["pairs"] == 2
        assert stats["max_degree"] == 2  # middle part talks to both
        assert stats["max_interface"] == 1
        assert stats["mean_interface"] == 1.0

    def test_stats_single_part(self, path6):
        stats = interface_stats(path6, [0] * 6, 1)
        assert stats["pairs"] == 0
        assert stats["mean_interface"] == 0.0


class TestSummary:
    def test_renders_everything(self):
        g = hex64()
        p = MetisLikePartitioner(seed=1).partition(g, 4)
        text = partition_summary(g, p.assignment, 4)
        assert "edge cut" in text
        assert "surface/volume" in text
        assert text.count("\n") >= 7  # header lines + one per part
