"""Tests for partition-quality metrics."""

from __future__ import annotations

import pytest

from repro.graphs import (
    Graph,
    boundary_nodes,
    communication_volume,
    edge_cut,
    load_imbalance,
    neighbor_processors,
    part_loads,
    parts_used,
    validate_assignment,
    weighted_edge_cut,
)


@pytest.fixture
def path4() -> Graph:
    return Graph.from_edges(4, [(1, 2), (2, 3), (3, 4)])


class TestValidate:
    def test_ok(self, path4):
        validate_assignment(path4, [0, 0, 1, 1], 2)

    def test_wrong_length(self, path4):
        with pytest.raises(ValueError):
            validate_assignment(path4, [0, 0, 1], 2)

    def test_out_of_range_proc(self, path4):
        with pytest.raises(ValueError):
            validate_assignment(path4, [0, 0, 2, 1], 2)
        with pytest.raises(ValueError):
            validate_assignment(path4, [0, 0, -1, 1], 2)


class TestEdgeCut:
    def test_no_cut_single_part(self, path4):
        assert edge_cut(path4, [0, 0, 0, 0]) == 0

    def test_middle_split(self, path4):
        assert edge_cut(path4, [0, 0, 1, 1]) == 1

    def test_alternating_cuts_everything(self, path4):
        assert edge_cut(path4, [0, 1, 0, 1]) == 3

    def test_weighted(self):
        g = Graph.from_edges(3, [(1, 2), (2, 3)], edge_weights={(1, 2): 10})
        assert weighted_edge_cut(g, [0, 1, 1]) == 10
        assert weighted_edge_cut(g, [0, 0, 1]) == 1
        assert edge_cut(g, [0, 1, 0]) == 2


class TestCommunicationVolume:
    def test_matches_shadow_count(self, path4):
        # split [1,2 | 3,4]: node 2 is shadow for proc 1, node 3 for proc 0.
        assert communication_volume(path4, [0, 0, 1, 1]) == 2

    def test_counts_distinct_procs_only(self):
        star = Graph.from_edges(4, [(1, 2), (1, 3), (1, 4)])
        # hub on 0, leaves spread over three procs: hub is shadow for all 3,
        # each leaf is shadow for the hub's proc.
        assert communication_volume(star, [0, 1, 2, 3]) == 3 + 3

    def test_zero_when_uncut(self, path4):
        assert communication_volume(path4, [0] * 4) == 0


class TestLoads:
    def test_part_loads(self, path4):
        assert part_loads(path4, [0, 0, 1, 1], 2) == [2, 2]

    def test_part_loads_weighted(self):
        g = Graph.from_edges(2, [(1, 2)], node_weights=[3, 5])
        assert part_loads(g, [0, 1], 2) == [3, 5]

    def test_imbalance_perfect(self, path4):
        assert load_imbalance(path4, [0, 0, 1, 1], 2) == 1.0

    def test_imbalance_skewed(self, path4):
        assert load_imbalance(path4, [0, 0, 0, 1], 2) == pytest.approx(1.5)

    def test_imbalance_empty_part_counts(self, path4):
        assert load_imbalance(path4, [0, 0, 0, 0], 2) == pytest.approx(2.0)

    def test_parts_used(self, path4):
        hist = parts_used([0, 0, 1, 1])
        assert hist[0] == 2 and hist[1] == 2


class TestBoundary:
    def test_boundary_nodes(self, path4):
        assert boundary_nodes(path4, [0, 0, 1, 1]) == {2, 3}

    def test_no_boundary_single_part(self, path4):
        assert boundary_nodes(path4, [0] * 4) == set()

    def test_neighbor_processors(self, path4):
        assignment = [0, 0, 1, 2]
        assert neighbor_processors(path4, assignment, 0) == {1}
        assert neighbor_processors(path4, assignment, 1) == {0, 2}
        assert neighbor_processors(path4, assignment, 2) == {1}
