"""Tests for message matching and the Status record."""

from __future__ import annotations

from repro.mpi import ANY_SOURCE, ANY_TAG, Message, Status


def _msg(src=0, dest=1, tag=0, comm_id=0, **kwargs):
    defaults = dict(
        payload="x", nbytes=1, send_time=0.0, arrival_time=0.0
    )
    defaults.update(kwargs)
    return Message(src=src, dest=dest, tag=tag, comm_id=comm_id, **defaults)


class TestMatching:
    def test_exact_match(self):
        assert _msg(src=2, tag=5).matches(2, 5, 0)

    def test_source_mismatch(self):
        assert not _msg(src=2).matches(3, ANY_TAG, 0)

    def test_tag_mismatch(self):
        assert not _msg(tag=5).matches(ANY_SOURCE, 6, 0)

    def test_any_source_matches_all(self):
        assert _msg(src=7).matches(ANY_SOURCE, ANY_TAG, 0)

    def test_any_tag_matches_all(self):
        assert _msg(tag=123).matches(ANY_SOURCE, ANY_TAG, 0)

    def test_comm_id_isolation(self):
        assert not _msg(comm_id=1).matches(ANY_SOURCE, ANY_TAG, 0)
        assert _msg(comm_id=("a", 1)).matches(ANY_SOURCE, ANY_TAG, ("a", 1))

    def test_seq_is_monotone(self):
        a, b = _msg(), _msg()
        assert b.seq > a.seq


class TestStatus:
    def test_defaults(self):
        status = Status()
        assert status.source == ANY_SOURCE
        assert status.tag == ANY_TAG
        assert status.nbytes == 0

    def test_update_from(self):
        status = Status()
        status.update_from(_msg(src=3, tag=9, nbytes=77))
        assert (status.source, status.tag, status.nbytes) == (3, 9, 77)
