"""Schedule-fuzzing conformance suite.

The virtual-time substrate promises that results depend only on the program
and the (seeded) fault plan -- never on how the host OS happens to schedule
the rank threads.  These tests *attack* that promise: the ``sched_jitter``
hook injects randomized real-time sleeps at the runtime's scheduling points
(message delivery, receive waits, barrier entry), perturbing thread
interleavings as hard as a loaded CI box would, and every run must still be
bit-identical -- virtual clocks, execution traces, and node results.
"""

from __future__ import annotations

import random
import time

from repro.apps.average import make_average_fn
from repro.core import ICPlatform, PlatformConfig
from repro.core.bsp import run_bsp
from repro.graphs import hex32
from repro.mpi import FaultPlan, IDEAL, run_mpi
from repro.partitioning import MetisLikePartitioner

#: Distinct host schedules to try per scenario (10 per the conformance spec).
RUNS = 10


def make_jitter(seed: int, max_sleep: float = 2e-4):
    """A jitter hook: sleep a seed-dependent random real-time amount."""
    rng = random.Random(seed)

    def jitter() -> None:
        # Skip some sleeps entirely so interleavings differ in *structure*,
        # not just in pace.
        if rng.random() < 0.5:
            time.sleep(rng.random() * max_sleep)

    return jitter


class TestBspScheduleFuzz:
    def test_bsp_program_is_schedule_independent(self):
        """The same BSP program under 10 perturbed host schedules produces
        bit-identical virtual clocks and states."""

        def prog(comm):
            def step(superstep, state, inbox, c):
                total = state + sum(inbox)
                out = [
                    ((c.rank + 1) % c.size, c.rank * 100 + superstep),
                    ((c.rank + 2) % c.size, superstep),
                ]
                c.work((c.rank + 1) * 1e-4)
                return total, out, superstep < 8
            final, steps = run_bsp(comm, step, 0, max_supersteps=12)
            return final, steps, comm.Wtime()

        reference = run_mpi(prog, 5, machine=IDEAL)
        for i in range(RUNS):
            fuzzed = run_mpi(
                prog, 5, machine=IDEAL, sched_jitter=make_jitter(seed=i)
            )
            assert fuzzed == reference, f"schedule {i} changed the results"

    def test_bsp_with_faults_is_schedule_independent(self):
        """Fault decisions are drawn per-rank in program order, so even a
        faulty run must not depend on the host schedule."""
        plan = FaultPlan.parse("seed=11,delay=0.2:0.002,drop=0.1,retry=12:1e-4,crash=1@4")

        def prog(comm):
            def step(superstep, state, inbox, c):
                out = [((c.rank + 1) % c.size, c.rank + superstep)]
                return state + sum(inbox), out, superstep < 6
            final, steps = run_bsp(
                comm, step, 0, max_supersteps=10, checkpoint_every=2
            )
            return final, steps, comm.Wtime()

        reference = run_mpi(prog, 4, faults=plan, deadlock_timeout=10.0)
        for i in range(RUNS):
            fuzzed = run_mpi(
                prog,
                4,
                faults=plan,
                deadlock_timeout=10.0,
                sched_jitter=make_jitter(seed=1000 + i),
            )
            assert fuzzed == reference, f"schedule {i} changed the faulty run"


class TestPlatformScheduleFuzz:
    def test_platform_run_is_schedule_independent(self):
        """Full platform sweeps (shadow exchange + trace) under perturbed
        schedules: virtual clocks, traces, and node values all identical."""
        graph = hex32()
        partition = MetisLikePartitioner(seed=0).partition(graph, 4)
        config = PlatformConfig(iterations=4, track_trace=True)

        def run(jitter=None):
            platform = ICPlatform(graph, make_average_fn(1e-4), config=config)
            return platform.run(partition, sched_jitter=jitter)

        reference = run()
        for i in range(RUNS):
            fuzzed = run(jitter=make_jitter(seed=2000 + i))
            assert fuzzed.elapsed == reference.elapsed
            assert fuzzed.values == reference.values
            assert fuzzed.trace.records == reference.trace.records
            assert [p.as_dict() for p in fuzzed.phases] == [
                p.as_dict() for p in reference.phases
            ]

    def test_shrink_recovery_is_schedule_independent(self):
        """The acceptance scenario: a fixed seed and one permanent crash
        under the shrink policy.  The whole reconfiguration -- failure
        detection, communicator re-ranking, checkpoint hand-off,
        redistribution of the lost partition -- must be bit-identical
        across 10 perturbed host schedules, and the final node states must
        match the fault-free run exactly."""
        graph = hex32()
        partition = MetisLikePartitioner(seed=0).partition(graph, 4)
        plan = "seed=3,crash=2@5"

        def run(faults=None, jitter=None):
            config = PlatformConfig(
                iterations=8,
                checkpoint_period=3,
                recovery_policy="shrink",
                track_trace=True,
            )
            platform = ICPlatform(graph, make_average_fn(1e-4), config=config)
            return platform.run(
                partition,
                faults=FaultPlan.parse(faults) if faults else None,
                sched_jitter=jitter,
                deadlock_timeout=10.0,
            )

        clean = run()
        reference = run(faults=plan)
        # Transparency vs fault-free is a BSP fact: shrink changes the
        # partition mid-run, and under hybrid execution the (converging)
        # trajectory is legitimately partition-dependent.  Schedule
        # independence below must hold in every mode.
        if PlatformConfig().execution == "bsp":
            assert reference.values == clean.values  # transparency
        assert reference.dead_ranks == (2,)
        assert reference.trace.reconfiguration_events()
        for i in range(RUNS):
            fuzzed = run(faults=plan, jitter=make_jitter(seed=3000 + i))
            assert fuzzed.elapsed == reference.elapsed
            assert fuzzed.values == reference.values
            assert fuzzed.final_assignment == reference.final_assignment
            assert fuzzed.trace.records == reference.trace.records
            assert (
                fuzzed.trace.reconfigurations == reference.trace.reconfigurations
            )
            assert [p.as_dict() for p in fuzzed.phases] == [
                p.as_dict() for p in reference.phases
            ]

    def test_integrity_repair_is_schedule_independent(self):
        """The silent-corruption acceptance scenario: message corruption on
        a checksummed link plus one boundary-node memory flip under full
        integrity protection.  Every injected corruption must be detected
        and healed (boundary flip from a shadow replica, without rollback),
        the final node states must be bit-identical to the fault-free run,
        and all of it must hold across 10 perturbed host schedules."""
        graph = hex32()
        partition = MetisLikePartitioner(seed=0).partition(graph, 4)
        # Lowest boundary node owned by rank 1: flips at a node with remote
        # neighbours exercise the replica-repair path.
        assignment = partition.assignment
        gid = next(
            g
            for g in sorted(graph.nodes())
            if assignment[g - 1] == 1
            and any(assignment[m - 1] != 1 for m in graph.neighbors(g))
        )
        plan = f"seed=11,flipmsg=0.05,flip=1@4:{gid}"

        def run(faults=None, jitter=None):
            config = PlatformConfig(iterations=8, integrity="full", track_trace=True)
            platform = ICPlatform(graph, make_average_fn(1e-4), config=config)
            return platform.run(
                partition,
                faults=FaultPlan.parse(faults) if faults else None,
                sched_jitter=jitter,
                deadlock_timeout=10.0,
            )

        clean = run()
        reference = run(faults=plan)
        assert reference.values == clean.values  # zero silent escapes
        assert reference.repairs == 1
        assert reference.recoveries == 0  # surgical repair, no rollback
        report = reference.fault_report
        assert report.flips == 1 and report.repairs == 1
        assert report.corrupted > 0 and report.retransmits == report.corrupted
        events = reference.trace.integrity_events()
        assert [(e.gid, e.mode, e.latency) for e in events] == [(gid, "repair", 0)]
        for i in range(RUNS):
            fuzzed = run(faults=plan, jitter=make_jitter(seed=7000 + i))
            assert fuzzed.elapsed == reference.elapsed
            assert fuzzed.values == reference.values
            assert fuzzed.trace.records == reference.trace.records
            assert fuzzed.trace.integrity == reference.trace.integrity
            assert [p.as_dict() for p in fuzzed.phases] == [
                p.as_dict() for p in reference.phases
            ]
