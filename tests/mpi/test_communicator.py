"""Tests for point-to-point and collective semantics."""

from __future__ import annotations

import pytest

from repro.mpi import (
    ANY_SOURCE,
    ANY_TAG,
    IDEAL,
    InvalidRankError,
    InvalidTagError,
    Status,
    run_mpi,
)


def _run(fn, nprocs, **kwargs):
    kwargs.setdefault("machine", IDEAL)
    kwargs.setdefault("deadlock_timeout", 5.0)
    return run_mpi(fn, nprocs, **kwargs)


class TestPointToPoint:
    def test_send_recv_object(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send({"a": [1, 2]}, 1, tag=9)
                return None
            return comm.recv(source=0, tag=9)

        assert _run(fn, 2)[1] == {"a": [1, 2]}

    def test_tag_filtering(self):
        def fn(comm):
            if comm.rank == 0:
                comm.isend("first", 1, tag=1)
                comm.isend("second", 1, tag=2)
                return None
            second = comm.recv(source=0, tag=2)
            first = comm.recv(source=0, tag=1)
            return (first, second)

        assert _run(fn, 2)[1] == ("first", "second")

    def test_any_tag_takes_first(self):
        def fn(comm):
            if comm.rank == 0:
                comm.isend("x", 1, tag=42)
                return None
            status = Status()
            payload = comm.recv(source=0, tag=ANY_TAG, status=status)
            return payload, status.tag

        assert _run(fn, 2)[1] == ("x", 42)

    def test_any_source_earliest_virtual_arrival_wins(self):
        def fn(comm):
            if comm.rank == 1:
                comm.work(2.0)
                comm.isend("late", 0, tag=5)
            elif comm.rank == 2:
                comm.isend("early", 0, tag=5)
            # Real-time rendezvous: both messages are in the mailbox before
            # rank 0 receives, so selection is by *virtual* arrival time.
            comm.barrier()
            if comm.rank == 0:
                status = Status()
                payload = comm.recv(source=ANY_SOURCE, tag=5, status=status)
                return payload, status.source

        results = _run(fn, 3)
        assert results[0] == ("early", 2)

    def test_status_fields(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send(b"12345", 1, tag=7)
                return None
            status = Status()
            comm.recv(source=0, tag=7, status=status)
            return (status.source, status.tag, status.nbytes)

        assert _run(fn, 2)[1] == (0, 7, 5)

    def test_invalid_dest_raises(self):
        def fn(comm):
            comm.send("x", 5)

        with pytest.raises(InvalidRankError):
            _run(fn, 2)

    def test_negative_tag_raises(self):
        def fn(comm):
            comm.send("x", 0, tag=-3)

        with pytest.raises(InvalidTagError):
            _run(fn, 2)

    def test_sendrecv(self):
        def fn(comm):
            peer = 1 - comm.rank
            return comm.sendrecv(f"from{comm.rank}", peer, source=peer)

        assert _run(fn, 2) == ["from1", "from0"]

    def test_nbytes_override_drives_cost(self):
        from repro.mpi import ORIGIN2000

        def fn(comm):
            if comm.rank == 0:
                comm.send("tiny", 1, nbytes=10**6)
            else:
                comm.recv(source=0)
            return comm.Wtime()

        t0, _ = run_mpi(fn, 2, machine=ORIGIN2000, deadlock_timeout=5.0)
        assert t0 == pytest.approx(ORIGIN2000.sender_cpu(10**6))


class TestNonblocking:
    def test_isend_completes_immediately(self):
        def fn(comm):
            if comm.rank == 0:
                req = comm.isend("hello", 1)
                done, _ = req.test()
                return done
            return comm.recv(source=0)

        done, payload = _run(fn, 2)
        assert done is True
        assert payload == "hello"

    def test_irecv_wait(self):
        def fn(comm):
            if comm.rank == 0:
                comm.isend(123, 1, tag=4)
                return None
            req = comm.irecv(source=0, tag=4)
            return req.wait()

        assert _run(fn, 2)[1] == 123

    def test_irecv_test_polls(self):
        def fn(comm):
            if comm.rank == 0:
                comm.barrier()
                comm.isend("late", 1, tag=4)
                comm.barrier()
                return None
            req = comm.irecv(source=0, tag=4)
            done_before, _ = req.test()
            comm.barrier()  # now rank 0 sends
            comm.barrier()
            done_after, payload = req.test()
            return done_before, done_after, payload

        result = _run(fn, 2)[1]
        assert result == (False, True, "late")

    def test_irecv_wait_is_idempotent(self):
        def fn(comm):
            if comm.rank == 0:
                comm.isend("x", 1)
                return None
            req = comm.irecv(source=0)
            return req.wait(), req.wait()

        assert _run(fn, 2)[1] == ("x", "x")

    def test_irecv_cancel(self):
        def fn(comm):
            req = comm.irecv(source=1 - comm.rank, tag=99)
            req.cancel()
            comm.barrier()
            return req.wait()

        assert _run(fn, 2) == [None, None]

    def test_overlap_hides_transfer_time(self):
        from repro.mpi import MachineModel

        slow = MachineModel(latency=1.0)  # one-second flight time

        def fn(comm):
            if comm.rank == 0:
                comm.isend("bulk", 1)
                return None
            req = comm.irecv(source=0)
            comm.work(2.0)  # compute while in flight
            req.wait()
            return comm.Wtime()

        _, t1 = run_mpi(fn, 2, machine=slow, deadlock_timeout=5.0)
        # Transfer (1 s) fully hidden behind the 2 s of compute.
        assert t1 == pytest.approx(2.0 + slow.receiver_cpu(20), rel=0.2)


class TestProbe:
    def test_probe_does_not_consume(self):
        def fn(comm):
            if comm.rank == 0:
                comm.isend("keep", 1, tag=6)
                return None
            status = comm.probe(source=0, tag=6)
            payload = comm.recv(source=0, tag=6)
            return status.source, payload

        assert _run(fn, 2)[1] == (0, "keep")

    def test_iprobe(self):
        def fn(comm):
            if comm.rank == 0:
                comm.barrier()
                return None
            before = comm.iprobe(source=0)
            comm.barrier()
            return before

        # rank 1 probes before rank 0 has sent anything: must be False
        assert _run(fn, 2)[1] is False

    def test_probe_preserves_fifo(self):
        def fn(comm):
            if comm.rank == 0:
                comm.isend("a", 1, tag=1)
                comm.isend("b", 1, tag=1)
                return None
            comm.probe(source=0, tag=1)
            return comm.recv(source=0, tag=1), comm.recv(source=0, tag=1)

        assert _run(fn, 2)[1] == ("a", "b")


class TestCollectives:
    @pytest.mark.parametrize("nprocs", [1, 2, 3, 4, 7, 8])
    @pytest.mark.parametrize("root", [0, 1])
    def test_bcast(self, nprocs, root):
        if root >= nprocs:
            pytest.skip("root outside communicator")

        def fn(comm):
            value = {"data": 42} if comm.rank == root else None
            return comm.bcast(value, root=root)

        assert _run(fn, nprocs) == [{"data": 42}] * nprocs

    @pytest.mark.parametrize("nprocs", [1, 2, 5, 8])
    def test_gather(self, nprocs):
        def fn(comm):
            return comm.gather(comm.rank**2, root=0)

        results = _run(fn, nprocs)
        assert results[0] == [r**2 for r in range(nprocs)]
        assert all(r is None for r in results[1:])

    def test_gather_nonzero_root(self):
        def fn(comm):
            return comm.gather(comm.rank, root=2)

        results = _run(fn, 4)
        assert results[2] == [0, 1, 2, 3]
        assert results[0] is None

    @pytest.mark.parametrize("nprocs", [1, 2, 4, 6])
    def test_scatter(self, nprocs):
        def fn(comm):
            objs = [f"item{i}" for i in range(comm.size)] if comm.rank == 0 else None
            return comm.scatter(objs, root=0)

        assert _run(fn, nprocs) == [f"item{i}" for i in range(nprocs)]

    def test_scatter_wrong_length(self):
        def fn(comm):
            comm.scatter([1], root=0)

        with pytest.raises(ValueError):
            _run(fn, 2)

    @pytest.mark.parametrize("nprocs", [1, 3, 8])
    def test_allgather(self, nprocs):
        def fn(comm):
            return comm.allgather(comm.rank * 2)

        expected = [r * 2 for r in range(nprocs)]
        assert _run(fn, nprocs) == [expected] * nprocs

    def test_reduce_default_sum(self):
        def fn(comm):
            return comm.reduce(comm.rank + 1, root=0)

        results = _run(fn, 5)
        assert results[0] == 15
        assert results[1] is None

    def test_reduce_custom_op(self):
        def fn(comm):
            return comm.reduce(comm.rank + 1, op=max, root=0)

        assert _run(fn, 6)[0] == 6

    def test_reduce_noncommutative_is_rank_ordered(self):
        def fn(comm):
            return comm.reduce(str(comm.rank), op=lambda a, b: a + b, root=0)

        assert _run(fn, 4)[0] == "0123"

    @pytest.mark.parametrize("nprocs", [1, 2, 7])
    def test_allreduce(self, nprocs):
        def fn(comm):
            return comm.allreduce(comm.rank)

        total = sum(range(nprocs))
        assert _run(fn, nprocs) == [total] * nprocs

    @pytest.mark.parametrize("nprocs", [1, 2, 4])
    def test_alltoall(self, nprocs):
        def fn(comm):
            objs = [(comm.rank, dest) for dest in range(comm.size)]
            return comm.alltoall(objs)

        results = _run(fn, nprocs)
        for r, received in enumerate(results):
            assert received == [(src, r) for src in range(nprocs)]

    def test_alltoall_wrong_length(self):
        def fn(comm):
            comm.alltoall([1])

        with pytest.raises(ValueError):
            _run(fn, 3)

    def test_consecutive_collectives_do_not_cross(self):
        def fn(comm):
            a = comm.bcast(comm.rank if comm.rank == 0 else None, root=0)
            b = comm.bcast(comm.rank if comm.rank == 1 else None, root=1)
            c = comm.allreduce(1)
            return (a, b, c)

        assert _run(fn, 4) == [(0, 1, 4)] * 4


class TestCommManagement:
    def test_dup_isolates_traffic(self):
        def fn(comm):
            dup = comm.dup()
            if comm.rank == 0:
                comm.isend("on-parent", 1, tag=1)
                dup.isend("on-dup", 1, tag=1)
                return None
            got_dup = dup.recv(source=0, tag=1)
            got_parent = comm.recv(source=0, tag=1)
            return got_parent, got_dup

        assert _run(fn, 2)[1] == ("on-parent", "on-dup")

    def test_split_groups(self):
        def fn(comm):
            color = comm.rank % 2
            sub = comm.split(color)
            return (color, sub.rank, sub.size, sub.allreduce(comm.rank))

        results = _run(fn, 4)
        # evens: ranks 0,2 -> sum 2; odds: 1,3 -> sum 4
        assert results[0] == (0, 0, 2, 2)
        assert results[2] == (0, 1, 2, 2)
        assert results[1] == (1, 0, 2, 4)
        assert results[3] == (1, 1, 2, 4)

    def test_split_none_color(self):
        def fn(comm):
            sub = comm.split(0 if comm.rank == 0 else None)
            return sub if sub is None else sub.size

        results = _run(fn, 3)
        assert results == [1, None, None]

    def test_split_key_reorders(self):
        def fn(comm):
            sub = comm.split(0, key=-comm.rank)  # reverse order
            return sub.rank

        assert _run(fn, 3) == [2, 1, 0]

    def test_split_barrier_works_in_subgroup(self):
        def fn(comm):
            sub = comm.split(comm.rank % 2)
            sub.work(float(comm.rank))
            sub.barrier()
            return sub.Wtime()

        times = _run(fn, 4)
        assert times[0] == times[2] == pytest.approx(2.0)
        assert times[1] == times[3] == pytest.approx(3.0)


class TestPrefixCollectives:
    @pytest.mark.parametrize("nprocs", [1, 2, 5, 8])
    def test_scan_sum(self, nprocs):
        def fn(comm):
            return comm.scan(comm.rank + 1)

        results = _run(fn, nprocs)
        expected = [sum(range(1, r + 2)) for r in range(nprocs)]
        assert results == expected

    def test_scan_noncommutative(self):
        def fn(comm):
            return comm.scan(str(comm.rank), op=lambda a, b: a + b)

        assert _run(fn, 4) == ["0", "01", "012", "0123"]

    @pytest.mark.parametrize("nprocs", [1, 3, 6])
    def test_exscan(self, nprocs):
        def fn(comm):
            return comm.exscan(comm.rank + 1)

        results = _run(fn, nprocs)
        assert results[0] is None
        for r in range(1, nprocs):
            assert results[r] == sum(range(1, r + 1))

    @pytest.mark.parametrize("nprocs", [1, 2, 4])
    def test_reduce_scatter(self, nprocs):
        def fn(comm):
            # rank s contributes s*10 + d for destination d
            objs = [comm.rank * 10 + d for d in range(comm.size)]
            return comm.reduce_scatter(objs)

        results = _run(fn, nprocs)
        for d in range(nprocs):
            expected = sum(s * 10 + d for s in range(nprocs))
            assert results[d] == expected

    def test_reduce_scatter_wrong_length(self):
        def fn(comm):
            comm.reduce_scatter([1])

        with pytest.raises(ValueError):
            _run(fn, 3)

    def test_scan_mixes_with_other_collectives(self):
        def fn(comm):
            a = comm.scan(1)
            b = comm.allreduce(a)
            c = comm.exscan(b)
            return (a, b, c)

        results = _run(fn, 3)
        # scan: 1,2,3 ; allreduce: 6 everywhere ; exscan of 6: None,6,12
        assert results == [(1, 6, None), (2, 6, 6), (3, 6, 12)]
