"""Property-based tests for the simulated MPI substrate."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import IDEAL, ORIGIN2000, run_mpi


@given(
    nprocs=st.integers(min_value=1, max_value=8),
    root=st.integers(min_value=0, max_value=7),
    payload=st.one_of(
        st.integers(), st.text(max_size=20), st.lists(st.integers(), max_size=5)
    ),
)
@settings(max_examples=40, deadline=None)
def test_bcast_delivers_payload_everywhere(nprocs, root, payload):
    root = root % nprocs

    def fn(comm):
        value = payload if comm.rank == root else None
        return comm.bcast(value, root=root)

    assert run_mpi(fn, nprocs, machine=IDEAL, deadlock_timeout=10.0) == [payload] * nprocs


@given(
    nprocs=st.integers(min_value=1, max_value=8),
    values=st.lists(st.integers(min_value=-100, max_value=100), min_size=8, max_size=8),
)
@settings(max_examples=40, deadline=None)
def test_allreduce_sum_is_exact(nprocs, values):
    def fn(comm):
        return comm.allreduce(values[comm.rank])

    expected = sum(values[:nprocs])
    assert run_mpi(fn, nprocs, machine=IDEAL, deadlock_timeout=10.0) == [expected] * nprocs


@given(
    nprocs=st.integers(min_value=2, max_value=6),
    messages=st.lists(
        st.tuples(st.integers(min_value=0, max_value=5), st.integers(min_value=0, max_value=3)),
        min_size=1,
        max_size=12,
    ),
)
@settings(max_examples=30, deadline=None)
def test_fifo_per_tag_stream(nprocs, messages):
    """Rank 0 sends a random interleaving of (value, tag) pairs to rank 1;
    receiving per tag in order must see each tag's values in send order."""

    def fn(comm):
        if comm.rank == 0:
            for idx, (value, tag) in enumerate(messages):
                comm.isend((idx, value), 1, tag=tag)
            return None
        if comm.rank == 1:
            received: dict[int, list[int]] = {}
            for tag in sorted({t for _, t in messages}):
                count = sum(1 for _, t in messages if t == tag)
                received[tag] = [comm.recv(source=0, tag=tag)[0] for _ in range(count)]
            return received
        return None

    results = run_mpi(fn, nprocs, machine=IDEAL, deadlock_timeout=10.0)
    received = results[1]
    for tag, indices in received.items():
        expected = [i for i, (_, t) in enumerate(messages) if t == tag]
        assert indices == expected


@given(
    nprocs=st.integers(min_value=1, max_value=6),
    work_units=st.lists(
        st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
        min_size=6,
        max_size=6,
    ),
)
@settings(max_examples=30, deadline=None)
def test_barrier_clock_is_max_of_entries(nprocs, work_units):
    def fn(comm):
        comm.work(work_units[comm.rank])
        comm.barrier()
        return comm.Wtime()

    times = run_mpi(fn, nprocs, machine=IDEAL, deadlock_timeout=10.0)
    expected = max(work_units[:nprocs])
    assert all(abs(t - expected) < 1e-12 for t in times)


@given(nprocs=st.integers(min_value=1, max_value=6), seed=st.integers(0, 1000))
@settings(max_examples=20, deadline=None)
def test_virtual_elapsed_is_reproducible(nprocs, seed):
    """The same program produces the same virtual clocks every run."""
    import random

    plan = random.Random(seed).choices(["work", "ring", "reduce"], k=6)

    def fn(comm):
        for op in plan:
            if op == "work":
                comm.work((comm.rank + 1) * 1e-4)
            elif op == "ring" and comm.size > 1:
                comm.isend(comm.rank, (comm.rank + 1) % comm.size, tag=7)
                comm.recv(source=(comm.rank - 1) % comm.size, tag=7)
            else:
                comm.allreduce(comm.rank)
        return comm.Wtime()

    first = run_mpi(fn, nprocs, machine=ORIGIN2000, deadlock_timeout=10.0)
    second = run_mpi(fn, nprocs, machine=ORIGIN2000, deadlock_timeout=10.0)
    assert first == second
