"""Tests for the machine cost models and payload-size estimation."""

from __future__ import annotations


import numpy as np
import pytest

from repro.mpi import ETHERNET_CLUSTER, IDEAL, ORIGIN2000, MachineModel, estimate_nbytes


class TestMachineModel:
    def test_transfer_time_is_alpha_beta(self):
        model = MachineModel(latency=10e-6, bandwidth=1e6)
        assert model.transfer_time(0) == pytest.approx(10e-6)
        assert model.transfer_time(1000) == pytest.approx(10e-6 + 1e-3)

    def test_sender_cpu_scales_with_bytes(self):
        model = MachineModel(send_overhead=5e-6, per_byte_cpu=1e-9)
        assert model.sender_cpu(0) == pytest.approx(5e-6)
        assert model.sender_cpu(1000) == pytest.approx(5e-6 + 1e-6)

    def test_receiver_cpu_scales_with_bytes(self):
        model = MachineModel(recv_overhead=7e-6, per_byte_cpu=2e-9)
        assert model.receiver_cpu(500) == pytest.approx(7e-6 + 1e-6)

    def test_barrier_time_single_rank_is_free(self):
        assert ORIGIN2000.barrier_time(1) == 0.0

    def test_barrier_time_log_tree(self):
        model = MachineModel(barrier_latency=10e-6)
        assert model.barrier_time(2) == pytest.approx(10e-6)
        assert model.barrier_time(8) == pytest.approx(30e-6)
        assert model.barrier_time(9) == pytest.approx(40e-6)  # ceil(log2 9) = 4

    def test_ideal_model_is_free(self):
        assert IDEAL.transfer_time(10**6) == 0.0
        assert IDEAL.sender_cpu(10**6) == 0.0
        assert IDEAL.receiver_cpu(10**6) == 0.0
        assert IDEAL.barrier_time(64) == 0.0

    def test_presets_are_distinct(self):
        assert ORIGIN2000.latency < ETHERNET_CLUSTER.latency
        assert ORIGIN2000.bandwidth > ETHERNET_CLUSTER.bandwidth

    def test_with_overrides_replaces_selected_fields(self):
        model = ORIGIN2000.with_overrides(latency=1e-3)
        assert model.latency == 1e-3
        assert model.bandwidth == ORIGIN2000.bandwidth

    def test_model_is_frozen(self):
        with pytest.raises(AttributeError):
            ORIGIN2000.latency = 0.0  # type: ignore[misc]


class TestEstimateNbytes:
    def test_none_is_zero(self):
        assert estimate_nbytes(None) == 0

    @pytest.mark.parametrize("value", [0, 1, -17, 3.14, True, 2 + 3j])
    def test_scalars_are_eight_bytes(self, value):
        assert estimate_nbytes(value) == 8

    def test_bytes_count_their_length(self):
        assert estimate_nbytes(b"abcd") == 4
        assert estimate_nbytes(bytearray(10)) == 10

    def test_str_counts_utf8(self):
        assert estimate_nbytes("abc") == 3
        assert estimate_nbytes("é") == 2  # two UTF-8 bytes

    def test_numpy_array_uses_true_nbytes(self):
        arr = np.zeros(100, dtype=np.float64)
        assert estimate_nbytes(arr) == 800

    def test_list_adds_header_plus_items(self):
        assert estimate_nbytes([1, 2, 3]) == 16 + 24

    def test_tuple_same_as_list(self):
        assert estimate_nbytes((1, 2, 3)) == estimate_nbytes([1, 2, 3])

    def test_nested_containers(self):
        value = [[1, 2], [3]]
        assert estimate_nbytes(value) == 16 + (16 + 16) + (16 + 8)

    def test_dict_counts_keys_and_values(self):
        assert estimate_nbytes({1: 2}) == 16 + 8 + 8

    def test_object_with_nbytes_attribute_wins(self):
        class Fat:
            nbytes = 12345

        assert estimate_nbytes(Fat()) == 12345

    def test_dataclass_sums_fields(self):
        from dataclasses import dataclass

        @dataclass
        class Pair:
            a: int
            b: float

        assert estimate_nbytes(Pair(1, 2.0)) == 16 + 16

    def test_empty_containers(self):
        assert estimate_nbytes([]) == 16
        assert estimate_nbytes({}) == 16
        assert estimate_nbytes("") == 0

    def test_fallback_pickles_unknown_objects(self):
        class Strange:
            pass

        assert estimate_nbytes(Strange()) > 0


class TestTopologyMachineModel:
    def _model(self, hop_factor=1.0):
        from repro.mpi import ORIGIN2000, TopologyMachineModel
        from repro.partitioning import ProcessorGraph

        return TopologyMachineModel.wrap(
            ORIGIN2000, ProcessorGraph.hypercube(8), hop_latency_factor=hop_factor
        )

    def test_one_hop_matches_base(self):
        from repro.mpi import ORIGIN2000

        model = self._model()
        assert model.transfer_time_between(100, 0, 1) == pytest.approx(
            ORIGIN2000.transfer_time(100)
        )

    def test_latency_grows_with_hops(self):
        model = self._model(hop_factor=0.5)
        # 0 -> 7 is 3 hops on the 8-hypercube
        t1 = model.transfer_time_between(0, 0, 1)
        t3 = model.transfer_time_between(0, 0, 7)
        assert t3 == pytest.approx(t1 * (1 + 0.5 * 2))

    def test_bandwidth_term_is_hop_independent(self):
        model = self._model(hop_factor=1.0)
        big = 10**6
        near = model.transfer_time_between(big, 0, 1)
        far = model.transfer_time_between(big, 0, 7)
        # the payload term dominates and is identical; only latency differs
        assert far - near == pytest.approx(model.latency * 2)

    def test_out_of_table_ranks_default_to_one_hop(self):
        model = self._model()
        assert model.hop_distance(0, 99) == 1.0

    def test_wrap_preserves_base_fields(self):
        from repro.mpi import ORIGIN2000

        model = self._model()
        assert model.bandwidth == ORIGIN2000.bandwidth
        assert model.send_overhead == ORIGIN2000.send_overhead
        assert model.name.endswith("+topology")

    def test_self_distance_zero_means_base_latency_scale_one(self):
        model = self._model()
        # distance 0 -> scale clamps at 1.0 (max(0, -1) term)
        assert model.transfer_time_between(0, 3, 3) == pytest.approx(model.latency)
