"""Tests for derived-datatype emulation."""

from __future__ import annotations

import pytest

from repro.mpi import CHAR, DOUBLE, INT, StructType


class TestBasicDatatypes:
    def test_extents(self):
        assert INT.extent == 4
        assert DOUBLE.extent == 8
        assert CHAR.extent == 1

    def test_size_of_count(self):
        assert INT.size_of(10) == 40
        assert DOUBLE.size_of(0) == 0

    def test_size_of_rejects_negative(self):
        with pytest.raises(ValueError):
            INT.size_of(-1)


class TestStructType:
    def test_buffer_record_matches_thesis(self):
        # The thesis commits a two-int struct (globalID, data).
        record = StructType([(2, INT)], name="buffer_data_node")
        record.commit()
        assert record.extent == 8
        assert record.size_of(5) == 40

    def test_use_before_commit_raises(self):
        record = StructType([(1, INT)])
        with pytest.raises(RuntimeError):
            record.size_of()

    def test_commit_returns_self(self):
        record = StructType([(1, DOUBLE)])
        assert record.commit() is record
        assert record.committed

    def test_mixed_blocks(self):
        record = StructType([(6, INT), (2, DOUBLE), (1, CHAR)]).commit()
        assert record.extent == 24 + 16 + 1

    def test_free_uncommits(self):
        record = StructType([(1, INT)]).commit()
        record.free()
        assert not record.committed
        with pytest.raises(RuntimeError):
            record.size_of()

    def test_empty_struct_rejected(self):
        with pytest.raises(ValueError):
            StructType([]).commit()

    def test_nonpositive_block_count_rejected(self):
        with pytest.raises(ValueError):
            StructType([(0, INT)]).commit()

    def test_size_of_rejects_negative_count(self):
        record = StructType([(1, INT)]).commit()
        with pytest.raises(ValueError):
            record.size_of(-2)
