"""Tests for the SimCluster runtime: execution, clocks, failures."""

from __future__ import annotations

import pytest

from repro.mpi import (
    CommAbortedError,
    DeadlockError,
    IDEAL,
    ORIGIN2000,
    SimCluster,
    run_mpi,
)


class TestRunBasics:
    def test_single_rank(self):
        assert run_mpi(lambda comm: comm.rank, 1) == [0]

    def test_results_in_rank_order(self):
        assert run_mpi(lambda comm: comm.rank * 10, 5) == [0, 10, 20, 30, 40]

    def test_extra_args_shared(self):
        results = run_mpi(lambda comm, x, y: x + y + comm.rank, 3, 100, 10)
        assert results == [110, 111, 112]

    def test_per_rank_args(self):
        results = run_mpi(
            lambda comm, tag: f"{comm.rank}:{tag}",
            3,
            per_rank_args=[("a",), ("b",), ("c",)],
        )
        assert results == ["0:a", "1:b", "2:c"]

    def test_per_rank_args_wrong_length(self):
        cluster = SimCluster(3)
        with pytest.raises(ValueError):
            cluster.run(lambda comm: None, per_rank_args=[(1,)])

    def test_zero_ranks_rejected(self):
        with pytest.raises(ValueError):
            SimCluster(0)

    def test_cluster_reports_size(self):
        cluster = SimCluster(4)
        assert cluster.nprocs == 4

    def test_get_rank_and_size(self):
        results = run_mpi(lambda comm: (comm.Get_rank(), comm.Get_size()), 3)
        assert results == [(0, 3), (1, 3), (2, 3)]


class TestVirtualClocks:
    def test_work_advances_clock(self):
        def fn(comm):
            assert comm.Wtime() == 0.0
            comm.work(1.5)
            return comm.Wtime()

        assert run_mpi(fn, 2, machine=IDEAL) == [1.5, 1.5]

    def test_charge_is_alias_for_work(self):
        def fn(comm):
            comm.charge(0.25)
            return comm.Wtime()

        assert run_mpi(fn, 1, machine=IDEAL) == [0.25]

    def test_negative_work_rejected(self):
        def fn(comm):
            comm.work(-1.0)

        with pytest.raises(ValueError):
            run_mpi(fn, 1)

    def test_clocks_are_independent(self):
        def fn(comm):
            comm.work(comm.rank * 1.0)
            return comm.Wtime()

        assert run_mpi(fn, 4, machine=IDEAL) == [0.0, 1.0, 2.0, 3.0]

    def test_barrier_synchronizes_to_max(self):
        def fn(comm):
            comm.work(comm.rank * 1.0)
            comm.barrier()
            return comm.Wtime()

        times = run_mpi(fn, 4, machine=IDEAL)
        assert times == [3.0] * 4

    def test_barrier_has_cost_on_real_machine(self):
        def fn(comm):
            comm.barrier()
            return comm.Wtime()

        times = run_mpi(fn, 4, machine=ORIGIN2000)
        expected = ORIGIN2000.barrier_time(4)
        assert all(t == pytest.approx(expected) for t in times)

    def test_repeated_barriers(self):
        def fn(comm):
            for _ in range(5):
                comm.work(0.1)
                comm.barrier()
            return round(comm.Wtime(), 6)

        times = run_mpi(fn, 3, machine=IDEAL)
        assert times == [pytest.approx(0.5)] * 3

    def test_message_costs_charged(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send(b"x" * 1000, 1)
            elif comm.rank == 1:
                comm.recv(source=0)
            return comm.Wtime()

        t0, t1 = run_mpi(fn, 2, machine=ORIGIN2000)
        assert t0 == pytest.approx(ORIGIN2000.sender_cpu(1000))
        expected_recv = (
            ORIGIN2000.sender_cpu(1000)
            + ORIGIN2000.transfer_time(1000)
            + ORIGIN2000.receiver_cpu(1000)
        )
        assert t1 == pytest.approx(expected_recv)

    def test_recv_waits_for_arrival_in_virtual_time(self):
        def fn(comm):
            if comm.rank == 0:
                comm.work(5.0)  # send late
                comm.send("late", 1)
            else:
                return comm.recv(source=0), comm.Wtime()

        _, (payload, t1) = run_mpi(fn, 2, machine=IDEAL)
        assert payload == "late"
        assert t1 >= 5.0

    def test_max_clock(self):
        cluster = SimCluster(3, machine=IDEAL)

        def fn(comm):
            comm.work((comm.rank + 1) * 2.0)

        cluster.run(fn)
        assert cluster.max_clock() == pytest.approx(6.0)


class TestFailureHandling:
    def test_exception_propagates(self):
        def fn(comm):
            if comm.rank == 1:
                raise RuntimeError("boom")
            comm.barrier()

        with pytest.raises(RuntimeError, match="boom"):
            run_mpi(fn, 3, deadlock_timeout=5.0)

    def test_peers_blocked_on_dead_rank_are_aborted_not_hung(self):
        def fn(comm):
            if comm.rank == 0:
                raise ValueError("dead")
            comm.recv(source=0)  # would block forever

        with pytest.raises(ValueError, match="dead"):
            run_mpi(fn, 2, deadlock_timeout=5.0)

    def test_deadlock_detected(self):
        def fn(comm):
            # Everyone receives; nobody sends.
            comm.recv(source=(comm.rank + 1) % comm.size)

        with pytest.raises((DeadlockError, CommAbortedError)):
            run_mpi(fn, 2, deadlock_timeout=0.3)

    def test_abort_wakes_blocked_ranks(self):
        def fn(comm):
            if comm.rank == 0:
                comm._cluster.abort("manual")  # type: ignore[attr-defined]
                return "aborted"
            comm.recv(source=0)

        with pytest.raises(CommAbortedError):
            run_mpi(fn, 2, deadlock_timeout=5.0)


class TestErrorPathConformance:
    """Error paths must carry diagnosable information and release every
    rank -- the watchdog and abort machinery's contract."""

    def test_recv_cycle_deadlock_message_names_the_wait(self):
        """The watchdog's DeadlockError says who is stuck waiting on what."""

        def fn(comm):
            comm.recv(source=(comm.rank + 1) % comm.size, tag=9)

        with pytest.raises((DeadlockError, CommAbortedError)) as excinfo:
            run_mpi(fn, 3, deadlock_timeout=0.3)
        text = str(excinfo.value)
        assert "deadlock" in text
        assert "tag=9" in text

    def test_barrier_deadlock_message_names_the_rank(self):
        def fn(comm):
            if comm.rank == 0:
                return  # exits without entering the barrier
            comm.barrier()

        with pytest.raises((DeadlockError, CommAbortedError)) as excinfo:
            run_mpi(fn, 2, deadlock_timeout=0.3)
        assert "barrier" in str(excinfo.value)

    def test_original_exception_type_survives_propagation(self):
        """SimCluster.run re-raises the *original* rank exception, not a
        wrapper -- peers get CommAbortedError, the caller gets the cause."""

        class AppSpecificError(Exception):
            pass

        def fn(comm):
            if comm.rank == 2:
                raise AppSpecificError("rank 2's own failure")
            comm.recv(source=2)  # peers block on the dead rank

        with pytest.raises(AppSpecificError, match="rank 2's own failure"):
            run_mpi(fn, 4, deadlock_timeout=5.0)

    def test_abort_reason_names_failed_rank(self):
        cluster = SimCluster(2, deadlock_timeout=5.0)

        def fn(comm):
            if comm.rank == 1:
                raise KeyError("lost node")
            comm.recv(source=1)

        with pytest.raises(KeyError):
            cluster.run(fn)
        assert "rank 1" in (cluster._abort_reason or "")
        assert "KeyError" in (cluster._abort_reason or "")

    def test_eager_send_send_cycle_completes(self):
        """A send/send cycle cannot deadlock under eager buffering: sends
        complete locally, each rank then drains its inbox."""

        def fn(comm):
            peer = (comm.rank + 1) % comm.size
            comm.send(comm.rank, peer, tag=4)
            return comm.recv(source=(comm.rank - 1) % comm.size, tag=4)

        assert run_mpi(fn, 4, deadlock_timeout=5.0) == [3, 0, 1, 2]

    def test_message_lost_error_reaches_caller(self):
        from repro.mpi import DropSpec, FaultPlan, MessageLostError, RetryPolicy

        plan = FaultPlan(
            seed=0,
            drop=DropSpec(prob=1.0),
            retry=RetryPolicy(max_attempts=2, timeout=1e-4),
        )

        def fn(comm):
            if comm.rank == 0:
                comm.send("doomed", 1)
            else:
                comm.recv(source=0)

        with pytest.raises(MessageLostError):
            run_mpi(fn, 2, faults=plan, deadlock_timeout=5.0)

    def test_failed_run_leaves_cluster_reusable(self):
        """After an abort, a fresh run() on the same cluster starts clean."""
        cluster = SimCluster(2, deadlock_timeout=5.0)

        def broken(comm):
            if comm.rank == 0:
                raise RuntimeError("first run dies")
            comm.recv(source=0)

        with pytest.raises(RuntimeError):
            cluster.run(broken)

        def healthy(comm):
            comm.barrier()
            return comm.rank

        assert cluster.run(healthy) == [0, 1]

    def test_quarantined_cluster_is_reusable(self):
        """A shrink recovery quarantines ``(comm_id, src)`` pairs so stale
        traffic from dead ranks is dropped; ``run()`` must clear them, or a
        reused cluster silently swallows a reused channel id's messages and
        the receiver hangs."""
        cluster = SimCluster(2, deadlock_timeout=5.0)

        def shrink_like(comm):
            if comm.rank == 0:
                # Pretend rank 1 died mid-run: purge its comm-0 traffic.
                cluster.quarantine(0, frozenset({1}), comm_id=0)
            return comm.rank

        assert cluster.run(shrink_like) == [0, 1]

        def exchange(comm):
            if comm.rank == 1:
                comm.send("hello", 0)
                return None
            return comm.recv(source=1)

        assert cluster.run(exchange) == ["hello", None]

    def test_fault_streams_reset_on_reused_cluster(self):
        """Each run() rebuilds the per-rank fault decision streams, so the
        same cluster replays the same plan identically run after run."""
        from repro.mpi import FaultPlan

        cluster = SimCluster(
            2,
            machine=ORIGIN2000,
            faults=FaultPlan.parse("seed=9,flipmsg=0.3"),
            checksums=True,
        )

        def fn(comm):
            if comm.rank == 0:
                for i in range(30):
                    comm.send(float(i), 1, tag=1)
                return comm.Wtime()
            received = [comm.recv(source=0, tag=1) for _ in range(30)]
            return received, comm.Wtime()

        first = cluster.run(fn)
        first_report = cluster.fault_state.report()
        second = cluster.run(fn)
        assert second == first
        assert cluster.fault_state.report() == first_report
        assert first_report.corrupted > 0


class TestDeterminism:
    def test_virtual_times_are_reproducible(self):
        def fn(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            for _ in range(20):
                comm.isend(comm.rank, right, tag=3)
                comm.recv(source=left, tag=3)
                comm.work(1e-4)
            return comm.Wtime()

        first = run_mpi(fn, 6)
        for _ in range(3):
            assert run_mpi(fn, 6) == first

    def test_named_source_fifo_order(self):
        def fn(comm):
            if comm.rank == 0:
                for i in range(50):
                    comm.isend(i, 1, tag=1)
                return None
            return [comm.recv(source=0, tag=1) for _ in range(50)]

        _, received = run_mpi(fn, 2)
        assert received == list(range(50))
