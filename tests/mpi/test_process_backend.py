"""Conformance and hygiene suite for the ``process`` scheduler backend.

The process backend runs each rank as a real OS process: SoA node arrays
live in named shared-memory segments, halo payloads travel through
per-edge shared ring buffers, and everything else (barriers, recv parks,
fault events, trace records) goes over a command pipe to the parent
broker.  The contract mirrors the event/threads suite: *virtual* outcomes
-- clocks, values, traces, fault and recovery behaviour -- are
bit-identical to the in-thread backends.  On top of conformance, this
file pins down the backend's hygiene properties: no shared-memory segment
outlives a run (normal exit, deadlock, or a SIGKILL'd worker), and
unsupported configurations fail fast with
:class:`~repro.mpi.errors.UnsupportedBackendError` instead of corrupting
a segment mid-run.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.apps.average import make_average_fn
from repro.core import ICPlatform, PlatformConfig
from repro.core.soastore import SoAStore
from repro.graphs import hex32
from repro.graphs.generators import cycle_graph
from repro.mpi import (
    CommAbortedError,
    DeadlockError,
    FaultPlan,
    SimCluster,
    UnsupportedBackendError,
    run_mpi,
)
from repro.mpi.shm import (
    ShadowRing,
    SharedStoreAllocator,
    is_shadow_payload,
    leaked_segments,
    make_run_prefix,
    unlink_prefix,
)
from repro.partitioning import MetisLikePartitioner

BACKENDS = ("event", "process")


def _assert_no_leaked_segments():
    """Every test ends with /dev/shm clean of this platform's segments."""
    leaks = leaked_segments()
    assert not leaks, f"leaked shared-memory segments: {leaks}"


# --------------------------------------------------------------------- #
# Platform conformance: identical virtual outcomes vs the event backend
# --------------------------------------------------------------------- #


class TestProcessConformance:
    def _platform_run(self, config, faults, backend):
        graph = hex32()
        partition = MetisLikePartitioner(seed=0).partition(graph, 4)
        platform = ICPlatform(
            graph,
            make_average_fn(1e-4),
            # The process backend holds node values in float64 segments,
            # so the workload must start from floats (the default int
            # gids would demote the store to object dtype).
            init_value=lambda gid: float(gid),
            config=config,
        )
        return platform.run(
            partition,
            faults=FaultPlan.parse(faults) if faults else None,
            scheduler=backend,
        )

    def _assert_platform_identical(self, config, faults=None):
        results = {
            backend: self._platform_run(config, faults, backend)
            for backend in BACKENDS
        }
        event, process = results["event"], results["process"]
        assert event.elapsed == process.elapsed
        assert event.values == process.values
        assert event.final_assignment == process.final_assignment
        assert event.trace.records == process.trace.records
        assert [p.as_dict() for p in event.phases] == [
            p.as_dict() for p in process.phases
        ]
        assert event.dead_ranks == process.dead_ranks
        _assert_no_leaked_segments()
        return event

    def test_fault_free_identical(self):
        self._assert_platform_identical(
            PlatformConfig(iterations=4, track_trace=True, store="soa")
        )

    def test_quiescence_identical(self):
        """Change-driven convergence: the active frontier shrinks across
        supersteps, exercising the sparse bulk-view path and the
        quiescence vote over the command pipe."""
        self._assert_platform_identical(
            PlatformConfig(
                iterations=40,
                converge="quiescence",
                track_trace=True,
                store="soa",
            )
        )

    def test_message_faults_identical(self):
        """Per-rank fault RNG streams are drawn inside the workers, so
        drop/delay decisions and the priced retries must land on the same
        virtual clocks as the in-thread draw."""
        self._assert_platform_identical(
            PlatformConfig(iterations=6, track_trace=True, store="soa"),
            faults="seed=7,drop=0.05,delay=0.1",
        )

    def test_checkpoint_rollback_identical(self):
        """Crash + rollback recovery: checkpoint snapshots, the failure
        detector, and the resurrect-and-rerun loop all replay identically
        with ranks in separate processes."""
        self._assert_platform_identical(
            PlatformConfig(
                iterations=8,
                checkpoint_period=3,
                recovery_policy="rollback",
                track_trace=True,
                store="soa",
            ),
            faults="seed=3,crash=2@5",
        )

    def test_crash_shrink_identical(self):
        """Shrink recovery rebuilds every survivor's store from scratch;
        the rebuilt SoA arrays must land in fresh shared segments (via
        ``adopt_runtime_policy``) and the reconfiguration must be
        bit-identical."""
        event = self._assert_platform_identical(
            PlatformConfig(
                iterations=8,
                checkpoint_period=3,
                recovery_policy="shrink",
                track_trace=True,
                store="soa",
            ),
            faults="seed=3,crash=2@5",
        )
        assert event.dead_ranks == (2,)
        assert event.trace.reconfiguration_events()

    def test_bsp_program_identical(self):
        """Raw run_mpi (no platform, no store): the command-pipe control
        plane alone reproduces the event backend's clocks."""

        def prog(comm):
            def step(superstep, state, inbox, c):
                out = [((c.rank + 1) % c.size, float(c.rank + superstep))]
                c.work((c.rank + 1) * 1e-4)
                return state + sum(inbox), out, superstep < 6

            from repro.core.bsp import run_bsp

            final, steps = run_bsp(comm, step, 0.0, max_supersteps=10)
            return final, steps, comm.Wtime()

        results = {
            backend: run_mpi(prog, 4, scheduler=backend)
            for backend in BACKENDS
        }
        assert results["event"] == results["process"]
        _assert_no_leaked_segments()

    def test_cluster_reuse(self):
        """A SimCluster survives back-to-back process runs: fresh workers,
        fresh segments, identical results both times."""
        cluster = SimCluster(3, scheduler="process")

        def prog(comm):
            comm.barrier()
            return comm.allreduce(float(comm.rank)), comm.Wtime()

        first = cluster.run(prog)
        second = cluster.run(prog)
        assert first == second
        _assert_no_leaked_segments()


# --------------------------------------------------------------------- #
# Shared-memory collectives (world barrier + quiescence allreduce)
# --------------------------------------------------------------------- #


def _collective_traffic(comm):
    """Exercise every shm fast-path surface in one program.

    Each superstep isends to a neighbour, barriers on the world
    communicator, discovers the sender via ``pending_sources`` (the probe
    the deliver-flush watermark protects), and votes with an integer
    allreduce -- the same shape as a change-driven platform superstep.
    """
    total = float(comm.rank)
    for step in range(8):
        peer = (comm.rank + 1) % comm.size
        comm.isend(total + step, dest=peer, tag=7)
        comm.work((comm.rank + 1) * 1e-5)
        comm.barrier()
        for src in comm.pending_sources(7):
            total += comm.recv(source=src, tag=7)
        total = comm.allreduce(int(total)) / comm.size
    return total, comm.Wtime()


class TestShmCollectives:
    """Satellite: barriers and int allreduces on the world communicator
    rendezvous in a shared CollectiveBlock instead of the command pipe."""

    def _run(self, scheduler, shm):
        cluster = SimCluster(4, scheduler=scheduler, shm_collectives=shm)
        results = cluster.run(_collective_traffic)
        return results, cluster

    def test_identity_and_counters_vs_event(self):
        event, _ = self._run("event", True)
        for shm in (True, False):
            process, _ = self._run("process", shm)
            assert process == event, f"shm_collectives={shm}"
        _assert_no_leaked_segments()

    def test_observability_counters_conform(self):
        """cluster.barriers and messages_delivered are backend- and
        path-independent: the parent folds the block's tallies in."""
        _, ev = self._run("event", True)
        _, shm_on = self._run("process", True)
        _, shm_off = self._run("process", False)
        assert shm_on.barriers == ev.barriers == shm_off.barriers
        assert (
            shm_on.messages_delivered
            == ev.messages_delivered
            == shm_off.messages_delivered
        )
        _assert_no_leaked_segments()

    def test_pipe_traffic_reduced(self):
        """The whole point: arbitration moves off the command pipe.  Every
        barrier saves one round-trip per rank and every allreduce the
        2(n-1) gather+bcast hops, so the broker handles strictly fewer
        requests with the block enabled."""
        _, shm_on = self._run("process", True)
        _, shm_off = self._run("process", False)
        assert shm_on.pipe_requests < shm_off.pipe_requests
        # 8 supersteps x 4 ranks x (1 barrier + 1 allreduce>=2 requests)
        # all leave the pipe; flush syncs add back at most 1 per rank per
        # rendezvous.
        assert shm_off.pipe_requests - shm_on.pipe_requests > 32
        _assert_no_leaked_segments()

    def test_send_visible_after_shm_barrier(self):
        """Regression: fire-and-forget delivers race the shm barrier on
        separate pipes; the deliver watermark published through the
        rendezvous must make them visible to post-barrier probes."""

        def prog(comm):
            seen = 0
            for step in range(50):
                if comm.rank == 0:
                    comm.isend(float(step), dest=1, tag=3)
                comm.barrier()
                if comm.rank == 1:
                    sources = comm.pending_sources(3)
                    assert sources == [0], f"step {step}: missed send"
                    comm.recv(source=0, tag=3)
                    seen += 1
            return seen

        results = run_mpi(prog, 2, scheduler="process")
        assert results[1] == 50
        _assert_no_leaked_segments()

    def test_barrier_deadlock_message_identical(self):
        """A rank parked in a shm barrier must surface in the deadlock
        report byte-identically to a pipe-barrier park."""

        def stuck(comm):
            if comm.rank == 0:
                comm.recv(source=1, tag=5)  # never sent
            else:
                comm.barrier()

        messages = {}
        for shm in (True, False):
            cluster = SimCluster(3, scheduler="process", shm_collectives=shm)
            with pytest.raises(DeadlockError) as excinfo:
                cluster.run(stuck)
            messages[shm] = str(excinfo.value)
        assert messages[True] == messages[False]
        _assert_no_leaked_segments()

    def test_float_allreduce_stays_on_pipe(self):
        """Only int payloads replay exactly through the block; float
        votes fall back to the pipe path and still conform."""

        def prog(comm):
            comm.barrier()
            return comm.allreduce(float(comm.rank) * 0.5), comm.Wtime()

        event = SimCluster(3, scheduler="event").run(prog)
        process = SimCluster(3, scheduler="process").run(prog)
        assert event == process
        _assert_no_leaked_segments()


# --------------------------------------------------------------------- #
# Deadlock and failure semantics
# --------------------------------------------------------------------- #


class TestProcessDeadlock:
    def test_recv_cycle_detected_immediately(self):
        """Pipe-FIFO determinism makes deadlock detection exact: a parked
        worker is blocked in ``conn.recv`` and cannot originate traffic,
        so all-parked proves no message is in flight.  No watchdog wait."""

        def stuck(comm):
            peer = 1 - comm.rank
            comm.recv(source=peer, tag=9)

        start = time.perf_counter()
        with pytest.raises(DeadlockError, match="tag=9"):
            run_mpi(stuck, 2, scheduler="process")
        assert time.perf_counter() - start < 5.0
        _assert_no_leaked_segments()

    def test_partial_barrier_detected(self):
        def stuck(comm):
            if comm.rank == 0:
                comm.recv(source=1, tag=5)  # never sent
            else:
                comm.barrier()

        with pytest.raises(DeadlockError, match="deadlock"):
            run_mpi(stuck, 3, scheduler="process")
        _assert_no_leaked_segments()

    def test_peers_get_comm_aborted(self):
        """The broker errs the non-victim parked ranks with the abort
        cascade, same as the in-thread backends."""

        def stuck(comm):
            try:
                comm.recv(source=(comm.rank + 1) % 3, tag=4)
            except CommAbortedError:
                return "aborted"
            return "matched"

        cluster = SimCluster(3, scheduler="process")
        with pytest.raises(DeadlockError, match="tag=4"):
            cluster.run(stuck)
        aborted = [
            cluster.state(r).result
            for r in range(3)
            if cluster.state(r).result == "aborted"
        ]
        assert len(aborted) == 2
        _assert_no_leaked_segments()

    def test_worker_process_death_surfaces(self):
        """A rank whose OS process dies outright (not a simulated crash)
        is reported as a RuntimeError and aborts the peers; its segments
        are still reaped by the parent."""

        def prog(comm):
            if comm.rank == 1:
                os.kill(os.getpid(), signal.SIGKILL)
            comm.recv(source=1 - comm.rank, tag=3)

        with pytest.raises(RuntimeError, match="worker process died"):
            run_mpi(prog, 2, scheduler="process")
        _assert_no_leaked_segments()

    def test_rank_exception_aborts_run(self):
        def prog(comm):
            if comm.rank == 0:
                raise ValueError("boom at rank 0")
            comm.recv(source=0, tag=1)

        with pytest.raises(ValueError, match="boom at rank 0"):
            run_mpi(prog, 2, scheduler="process")
        _assert_no_leaked_segments()


# --------------------------------------------------------------------- #
# Unsupported-configuration gates
# --------------------------------------------------------------------- #


class TestProcessGates:
    def test_object_store_rejected_before_spawn(self):
        """--store object cannot be segment-backed; the config gate fires
        before any worker is forked."""
        config = PlatformConfig(iterations=2, store="object")
        with pytest.raises(UnsupportedBackendError, match="store"):
            config.validate_for_scheduler("process")

        graph = hex32()
        partition = MetisLikePartitioner(seed=0).partition(graph, 4)
        platform = ICPlatform(graph, make_average_fn(1e-4), config=config)
        with pytest.raises(UnsupportedBackendError):
            platform.run(partition, scheduler="process")
        _assert_no_leaked_segments()

    def test_object_valued_workload_rejected_early(self):
        """store=soa but int-valued nodes: the store demotes to object
        dtype during init, and attaching the shared allocator refuses
        rather than silently falling back to a private heap store."""
        graph = hex32()
        partition = MetisLikePartitioner(seed=0).partition(graph, 4)
        platform = ICPlatform(  # default init_value: int gids -> demotion
            graph,
            make_average_fn(1e-4),
            config=PlatformConfig(iterations=2, store="soa"),
        )
        with pytest.raises(UnsupportedBackendError, match="float"):
            platform.run(partition, scheduler="process")
        _assert_no_leaked_segments()

    def test_sched_jitter_rejected(self):
        """Schedule fuzzing perturbs host threads; worker processes have
        none, so arming it alongside the process backend is an error."""
        with pytest.raises(UnsupportedBackendError, match="jitter"):
            cluster = SimCluster(
                2, sched_jitter=lambda: None, scheduler="process"
            )
            cluster.run(lambda comm: comm.barrier())

    def test_demotion_under_shared_arrays_raises(self):
        """Regression: writing a non-float value into a segment-backed
        SoAStore must raise UnsupportedBackendError, not demote (the
        object arrays could not live in the shared segment)."""
        graph = cycle_graph(8)
        assignment = [0] * 8
        store = SoAStore(0, graph, assignment, init_value=lambda gid: float(gid))
        prefix = make_run_prefix()
        try:
            store.use_shared_arrays(SharedStoreAllocator(prefix, 0))
            record = store.data_records[1]
            record.most_recent_data = 2.5  # floats stay on the fast path
            with pytest.raises(UnsupportedBackendError, match="demote"):
                record.most_recent_data = "not-a-float"
            # The store is still intact and float-valued after the refusal.
            assert record.most_recent_data == 2.5
            assert store.value_of(1) == 1.0
        finally:
            unlink_prefix(prefix)
        _assert_no_leaked_segments()


# --------------------------------------------------------------------- #
# Shared-memory primitives
# --------------------------------------------------------------------- #


class TestShadowRing:
    def test_payload_criterion(self):
        good = tuple((i, float(i)) for i in range(4))
        assert is_shadow_payload(good)
        assert not is_shadow_payload(good[:3])  # below fast-path floor
        assert not is_shadow_payload(list(good))  # wrong container
        assert not is_shadow_payload(good + (("x", 1.0),))

    def test_roundtrip_and_retire(self):
        prefix = make_run_prefix()
        name = f"{prefix}-ring"
        writer = ShadowRing.create(name, capacity=16)
        try:
            reader = ShadowRing.attach(name)
            try:
                payload = tuple((gid, gid * 0.5) for gid in range(1, 7))
                ref = writer.try_put(payload)
                assert ref is not None
                gids, vals = reader.read(ref)
                assert tuple(zip(gids.tolist(), vals.tolist())) == payload
                reader.retire(ref)
                # After retirement the capacity is fully reusable: fill
                # the ring to the brim, wrap-around included.
                for _ in range(5):
                    ref = writer.try_put(payload)
                    assert ref is not None
                    reader.retire(ref)
            finally:
                reader.close()
        finally:
            writer.release()
        _assert_no_leaked_segments()

    def test_try_put_backpressure(self):
        prefix = make_run_prefix()
        name = f"{prefix}-ringbp"
        writer = ShadowRing.create(name, capacity=8)
        try:
            payload = tuple((i, float(i)) for i in range(5))
            assert writer.try_put(payload) is not None
            # 5 of 8 slots consumed and never retired: the next put
            # cannot fit and must signal fallback-to-pickling.
            assert writer.try_put(payload) is None
        finally:
            writer.release()
        _assert_no_leaked_segments()


class TestSparseGeometryCache:
    def test_repeated_frontier_hits_cache(self):
        """Satellite: anonymous sparse bulk views (change-driven sweeps)
        memoize their CSR gather geometry keyed by the positions bytes."""
        import numpy as np

        graph = cycle_graph(32)
        store = SoAStore(
            0, graph, [0] * 32, init_value=lambda gid: float(gid)
        )
        positions = np.arange(4, dtype=np.intp)
        store.bulk_view(positions, iteration=0, round_idx=0)
        assert store.sparse_geom_misses == 1
        store.bulk_view(positions.copy(), iteration=1, round_idx=0)
        assert store.sparse_geom_hits == 1
        # A different frontier is a miss, not a collision.
        store.bulk_view(np.arange(8, dtype=np.intp), iteration=2, round_idx=0)
        assert store.sparse_geom_misses == 2
