"""Cross-backend conformance suite for the execution schedulers.

The ``event`` and ``threads`` backends make opposite host-level trade-offs
(cooperative baton-passing vs preemptive polling), but the contract is that
*virtual* outcomes are bit-identical: clocks, results, traces, fault and
recovery behaviour.  Every scenario here runs on both backends and compares
field by field; the exact-deadlock tests additionally pin down the event
backend's headline property -- deadlock surfaces immediately instead of
after a 10 s wall-clock watchdog.
"""

from __future__ import annotations

import sys
import time

import pytest

from repro.apps.average import make_average_fn
from repro.core import ICPlatform, PlatformConfig
from repro.core.bsp import run_bsp
from repro.graphs import hex32
from repro.mpi import (
    IDEAL,
    CommAbortedError,
    DeadlockError,
    FaultPlan,
    Mailbox,
    Message,
    SimCluster,
    run_mpi,
)
from repro.mpi.communicator import Communicator
from repro.mpi.scheduler import resolve_scheduler_name
from repro.partitioning import MetisLikePartitioner

BACKENDS = ("event", "threads")


# --------------------------------------------------------------------- #
# Backend selection
# --------------------------------------------------------------------- #


class TestBackendSelection:
    def test_default_is_event(self):
        assert SimCluster(2).scheduler == "event"

    def test_jitter_defaults_to_threads(self):
        """Schedule fuzzing perturbs host races; the event backend has
        none, so an armed jitter hook flips the default."""
        assert SimCluster(2, sched_jitter=lambda: None).scheduler == "threads"

    def test_explicit_choice_wins_over_jitter(self):
        cluster = SimCluster(2, sched_jitter=lambda: None, scheduler="event")
        assert cluster.scheduler == "event"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            SimCluster(2, scheduler="fibers")
        with pytest.raises(ValueError, match="unknown scheduler"):
            resolve_scheduler_name("green-threads", None)


# --------------------------------------------------------------------- #
# Cross-backend conformance: identical virtual outcomes
# --------------------------------------------------------------------- #


def _bsp_prog(comm):
    def step(superstep, state, inbox, c):
        total = state + sum(inbox)
        out = [
            ((c.rank + 1) % c.size, c.rank * 100 + superstep),
            ((c.rank + 2) % c.size, superstep),
        ]
        c.work((c.rank + 1) * 1e-4)
        return total, out, superstep < 8

    final, steps = run_bsp(comm, step, 0, max_supersteps=12)
    return final, steps, comm.Wtime()


class TestCrossBackendConformance:
    def test_bsp_program_identical(self):
        results = {
            backend: run_mpi(_bsp_prog, 5, machine=IDEAL, scheduler=backend)
            for backend in BACKENDS
        }
        assert results["event"] == results["threads"]

    def test_bsp_with_faults_identical(self):
        """Fault decisions are drawn per rank in program order, so delay,
        drop/retry, and crash outcomes must not depend on the backend."""
        plan = FaultPlan.parse(
            "seed=11,delay=0.2:0.002,drop=0.1,retry=12:1e-4,crash=1@4"
        )

        def prog(comm):
            def step(superstep, state, inbox, c):
                out = [((c.rank + 1) % c.size, c.rank + superstep)]
                return state + sum(inbox), out, superstep < 6

            final, steps = run_bsp(comm, step, 0, max_supersteps=10, checkpoint_every=2)
            return final, steps, comm.Wtime()

        results = {
            backend: run_mpi(prog, 4, faults=plan, scheduler=backend)
            for backend in BACKENDS
        }
        assert results["event"] == results["threads"]

    def _platform_run(self, config, faults, backend):
        graph = hex32()
        partition = MetisLikePartitioner(seed=0).partition(graph, 4)
        platform = ICPlatform(graph, make_average_fn(1e-4), config=config)
        return platform.run(
            partition,
            faults=FaultPlan.parse(faults) if faults else None,
            scheduler=backend,
        )

    def _assert_platform_identical(self, config, faults=None):
        results = {
            backend: self._platform_run(config, faults, backend)
            for backend in BACKENDS
        }
        event, threads = results["event"], results["threads"]
        assert event.elapsed == threads.elapsed
        assert event.values == threads.values
        assert event.final_assignment == threads.final_assignment
        assert event.trace.records == threads.trace.records
        assert [p.as_dict() for p in event.phases] == [
            p.as_dict() for p in threads.phases
        ]
        return event

    @pytest.mark.parametrize("store", ["object", "soa"])
    def test_platform_fault_free_identical(self, store):
        self._assert_platform_identical(
            PlatformConfig(iterations=4, track_trace=True, store=store)
        )

    @pytest.mark.parametrize("store", ["object", "soa"])
    def test_platform_crash_shrink_identical(self, store):
        """The shrink-recovery acceptance scenario -- failure detection,
        survivor re-ranking, quarantine, checkpoint hand-off, and
        redistribution -- plays out identically on both backends."""
        event = self._assert_platform_identical(
            PlatformConfig(
                iterations=8,
                checkpoint_period=3,
                recovery_policy="shrink",
                track_trace=True,
                store=store,
            ),
            faults="seed=3,crash=2@5",
        )
        assert event.dead_ranks == (2,)
        assert event.trace.reconfiguration_events()

    @pytest.mark.parametrize("store", ["object", "soa"])
    def test_platform_integrity_repair_identical(self, store):
        """Checksummed transport + shadow-replica repair of a boundary-node
        memory flip: the priced NACK/retransmit rounds and the repair event
        land on the same virtual clocks on both backends."""
        graph = hex32()
        assignment = MetisLikePartitioner(seed=0).partition(graph, 4).assignment
        gid = next(
            g
            for g in sorted(graph.nodes())
            if assignment[g - 1] == 1
            and any(assignment[m - 1] != 1 for m in graph.neighbors(g))
        )
        event = self._assert_platform_identical(
            PlatformConfig(
                iterations=8, integrity="full", track_trace=True, store=store
            ),
            faults=f"seed=11,flipmsg=0.05,flip=1@4:{gid}",
        )
        assert event.repairs == 1
        assert event.recoveries == 0


# --------------------------------------------------------------------- #
# Exact deadlock detection (event backend)
# --------------------------------------------------------------------- #


class TestExactDeadlock:
    def test_recv_cycle_detected_immediately(self):
        """A two-rank receive cycle must surface well under 1 s of real
        time even with the default 10 s watchdog budget -- the event
        backend proves the deadlock from its run queue, it never waits."""

        def stuck(comm):
            peer = 1 - comm.rank
            comm.recv(source=peer, tag=9)

        start = time.perf_counter()
        with pytest.raises(DeadlockError, match="tag=9"):
            run_mpi(stuck, 2, scheduler="event")
        assert time.perf_counter() - start < 1.0

    def test_partial_barrier_detected_immediately(self):
        def stuck(comm):
            if comm.rank == 0:
                comm.recv(source=1, tag=5)  # never sent
            else:
                comm.barrier()

        start = time.perf_counter()
        with pytest.raises(DeadlockError, match="deadlock"):
            run_mpi(stuck, 3, scheduler="event")
        assert time.perf_counter() - start < 1.0

    def test_finisher_detected_deadlock(self):
        """Deadlock discovered by a *finishing* rank (the waiters blocked
        while it was still runnable): the lowest blocked rank is picked as
        the victim and raises; its peers get the abort cascade."""

        def prog(comm):
            if comm.rank == 2:
                return "done"  # finishes instantly, leaving 0 and 1 stuck
            comm.recv(source=2, tag=7)

        start = time.perf_counter()
        with pytest.raises(DeadlockError, match="tag=7"):
            run_mpi(prog, 3, scheduler="event")
        assert time.perf_counter() - start < 1.0

    def test_peers_get_comm_aborted(self):
        errors = {}

        def stuck(comm):
            try:
                comm.recv(source=(comm.rank + 1) % 3, tag=4)
            except BaseException as exc:  # noqa: BLE001 - recording for assert
                errors[comm.rank] = type(exc).__name__
                raise

        with pytest.raises(DeadlockError):
            run_mpi(stuck, 3, scheduler="event")
        assert sorted(errors.values()) == [
            "CommAbortedError",
            "CommAbortedError",
            "DeadlockError",
        ]

    def test_threads_backend_still_uses_watchdog(self):
        """The legacy watchdog path stays intact (short timeout here)."""

        def stuck(comm):
            comm.recv(source=1 - comm.rank, tag=9)

        with pytest.raises(DeadlockError, match="tag=9"):
            run_mpi(stuck, 2, scheduler="threads", deadlock_timeout=0.3)


# --------------------------------------------------------------------- #
# Barrier keyed by (comm_id, group)
# --------------------------------------------------------------------- #


class TestBarrierGroupKeying:
    def test_same_comm_id_disjoint_groups_do_not_cross_release(self):
        """Two hand-built sub-communicators sharing a channel id: their
        barriers must rendezvous independently.  Keyed only by comm_id,
        the first two arrivals (one from each pair) would release each
        other and the release clock would blend the two groups."""

        def prog(comm):
            cluster = comm._cluster
            world = comm.rank
            group = (0, 1) if world < 2 else (2, 3)
            sub = Communicator(cluster, world, group, comm_id=99)
            if world == 2:
                comm.work(1.0)  # only group B's release clock may see this
            sub.barrier()
            return round(comm.Wtime(), 9)

        times = run_mpi(prog, 4, machine=IDEAL, scheduler="event")
        # Group A (ranks 0, 1) never waits on rank 2's big charge...
        assert times[0] == times[1] < 0.5
        # ...while group B's release clock includes it.
        assert times[2] == times[3] >= 1.0

    def test_identical_on_both_backends(self):
        def prog(comm):
            cluster = comm._cluster
            world = comm.rank
            group = (0, 1) if world < 2 else (2, 3)
            sub = Communicator(cluster, world, group, comm_id=99)
            comm.work((world + 1) * 1e-3)
            sub.barrier()
            return comm.Wtime()

        results = {
            backend: run_mpi(prog, 4, machine=IDEAL, scheduler=backend)
            for backend in BACKENDS
        }
        assert results["event"] == results["threads"]


# --------------------------------------------------------------------- #
# Multi-rank failure aggregation
# --------------------------------------------------------------------- #


class TestErrorAggregation:
    @pytest.mark.skipif(sys.version_info < (3, 11), reason="needs add_note")
    def test_second_failure_attached_as_note(self):
        """Two ranks with *independent* original bugs: the first is
        re-raised, the second is visible as a ``__notes__`` line instead
        of being silently masked."""

        def prog(comm):
            # Ranks 1 and 2 fail before touching the transport again, so
            # neither failure can be converted into an abort of the other.
            if comm.rank == 1:
                raise KeyError("rank1-bug")
            if comm.rank == 2:
                raise ValueError("rank2-bug")
            try:
                comm.recv(source=1, tag=0)
            except CommAbortedError:
                return "aborted"

        with pytest.raises(KeyError, match="rank1-bug") as excinfo:
            run_mpi(prog, 3, scheduler="event")
        notes = "\n".join(getattr(excinfo.value, "__notes__", []))
        assert "rank 2" in notes and "ValueError" in notes and "rank2-bug" in notes

    def test_single_failure_has_no_notes(self):
        def prog(comm):
            if comm.rank == 1:
                raise KeyError("solo")
            try:
                comm.recv(source=1, tag=0)
            except CommAbortedError:
                return "aborted"

        with pytest.raises(KeyError, match="solo") as excinfo:
            run_mpi(prog, 2, scheduler="event")
        assert not getattr(excinfo.value, "__notes__", [])


# --------------------------------------------------------------------- #
# Event-backend robustness: reuse, abort, quarantine
# --------------------------------------------------------------------- #


class TestEventBackendRobustness:
    def test_cluster_reusable_after_failure(self):
        cluster = SimCluster(2, scheduler="event")

        def bad(comm):
            if comm.rank == 0:
                raise RuntimeError("boom")
            try:
                comm.recv(source=0, tag=0)
            except CommAbortedError:
                return None

        with pytest.raises(RuntimeError, match="boom"):
            cluster.run(bad)

        def good(comm):
            comm.send(comm.rank, dest=1 - comm.rank, tag=1)
            return comm.recv(source=1 - comm.rank, tag=1)

        assert cluster.run(good) == [1, 0]

    def test_cluster_reusable_after_deadlock(self):
        cluster = SimCluster(2, scheduler="event")

        def stuck(comm):
            comm.recv(source=1 - comm.rank, tag=9)

        with pytest.raises(DeadlockError):
            cluster.run(stuck)

        def good(comm):
            comm.send("ok", dest=1 - comm.rank, tag=1)
            return comm.recv(source=1 - comm.rank, tag=1)

        assert cluster.run(good) == ["ok", "ok"]

    def test_run_order_is_reproducible(self):
        """The cooperative schedule itself is deterministic, so even
        host-order-sensitive observations (here: global message sequence
        numbers modulo an offset) repeat exactly run over run."""

        def prog(comm):
            order = []
            for round_no in range(3):
                comm.send((comm.rank, round_no), dest=(comm.rank + 1) % 3, tag=0)
            for _ in range(3):
                order.append(comm.recv(source=(comm.rank - 1) % 3, tag=0))
            return order

        cluster = SimCluster(3, scheduler="event")
        first = cluster.run(prog)
        for _ in range(3):
            assert cluster.run(prog) == first


# --------------------------------------------------------------------- #
# Mailbox index unit tests
# --------------------------------------------------------------------- #


def _msg(src, tag, arrival, comm_id=0, payload=None):
    return Message(
        src=src,
        dest=0,
        tag=tag,
        comm_id=comm_id,
        payload=payload if payload is not None else (src, tag, arrival),
        nbytes=8,
        send_time=0.0,
        arrival_time=arrival,
    )


class TestMailbox:
    def test_fifo_within_stream(self):
        box = Mailbox()
        first, second = _msg(1, 5, 2.0), _msg(1, 5, 1.0)
        box.append(first)
        box.append(second)  # later arrival queued behind earlier send
        assert box.take(1, 5, 0) is first
        assert box.take(1, 5, 0) is second
        assert box.take(1, 5, 0) is None

    def test_any_tag_follows_send_order(self):
        box = Mailbox()
        a, b = _msg(1, 7, 1.0), _msg(1, 3, 2.0)
        box.append(a)  # injected first -> lower seq
        box.append(b)
        assert box.take(1, -1, 0) is a
        assert box.take(1, -1, 0) is b

    def test_any_source_picks_earliest_arrival(self):
        box = Mailbox()
        late, early = _msg(1, 0, 5.0), _msg(2, 0, 1.0)
        box.append(late)
        box.append(early)
        assert box.take(-1, 0, 0) is early
        assert box.take(-1, 0, 0) is late

    def test_any_source_arrival_tie_breaks_on_src(self):
        box = Mailbox()
        from_two, from_one = _msg(2, 0, 1.0), _msg(1, 0, 1.0)
        box.append(from_two)
        box.append(from_one)
        assert box.take(-1, 0, 0) is from_one

    def test_comm_isolation(self):
        box = Mailbox()
        box.append(_msg(1, 0, 1.0, comm_id=7))
        assert box.take(1, 0, 0) is None
        assert box.take(1, 0, 7) is not None

    def test_peek_does_not_consume(self):
        box = Mailbox()
        msg = _msg(1, 0, 1.0)
        box.append(msg)
        assert box.take(1, 0, 0, consume=False) is msg
        assert len(box) == 1
        assert box.take(1, 0, 0) is msg
        assert len(box) == 0 and not box

    def test_purge_counts_and_isolates(self):
        box = Mailbox()
        for arrival in (1.0, 2.0):
            box.append(_msg(1, 0, arrival))
        box.append(_msg(2, 0, 3.0))
        box.append(_msg(1, 0, 9.0, comm_id=5))
        assert box.purge(0, {1}) == 2
        assert len(box) == 2
        assert box.take(1, 0, 0) is None  # purged
        assert box.take(2, 0, 0) is not None  # untouched peer
        assert box.take(1, 0, 5) is not None  # untouched comm
        assert box.purge(0, {1, 2}) == 0  # idempotent / empty

    def test_iter_and_clear(self):
        box = Mailbox()
        for src in (1, 2, 3):
            box.append(_msg(src, src, float(src)))
        assert {m.src for m in box} == {1, 2, 3}
        box.clear()
        assert len(box) == 0 and list(box) == []
