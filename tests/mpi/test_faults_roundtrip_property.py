"""Property test: ``FaultPlan.parse`` and ``to_spec`` are exact inverses.

The CLI, the bench harness, and the conformance suite all pass fault plans
around as spec strings, so every representable plan must survive
``parse(to_spec(plan)) == plan`` bit-for-bit -- including the silent-
corruption clauses (``flipmsg=``, ``flip=``) added for integrity testing.
Malformed tokens must come back as one-line usage errors (exit code 2)
through the CLI, never tracebacks.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.graphs.chaco import write_chaco
from repro.graphs.generators import grid2d
from repro.mpi import (
    CrashEvent,
    DelaySpec,
    DropSpec,
    FaultPlan,
    MemoryFlipEvent,
    MessageFlipSpec,
    RetryPolicy,
    SlowWindow,
)

probs = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
small_floats = st.floats(min_value=0.0, max_value=10.0, allow_nan=False)
ranks = st.integers(min_value=0, max_value=15)
iterations = st.integers(min_value=1, max_value=200)

delays = st.builds(DelaySpec, prob=probs, extra=small_floats)
drops = st.builds(DropSpec, prob=probs)
retries = st.builds(
    RetryPolicy,
    max_attempts=st.integers(min_value=1, max_value=24),
    timeout=st.one_of(st.none(), small_floats),
    backoff=st.floats(min_value=1.0, max_value=8.0, allow_nan=False),
)
slow_windows = st.builds(
    SlowWindow,
    rank=ranks,
    factor=st.floats(min_value=1.0, max_value=50.0, allow_nan=False),
    start=small_floats,
    end=st.none(),
).flatmap(
    lambda w: st.one_of(
        st.just(w),
        st.floats(min_value=1e-3, max_value=10.0, allow_nan=False).map(
            lambda delta: SlowWindow(
                rank=w.rank, factor=w.factor, start=w.start, end=w.start + delta
            )
        ),
    )
)
crashes = st.builds(CrashEvent, rank=ranks, iteration=iterations)
flip_msgs = st.builds(MessageFlipSpec, prob=probs)
flips = st.builds(
    MemoryFlipEvent,
    rank=ranks,
    iteration=iterations,
    node=st.one_of(st.none(), st.integers(min_value=1, max_value=4096)),
)

plans = st.builds(
    FaultPlan,
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    delay=st.one_of(st.none(), delays),
    drop=st.one_of(st.none(), drops),
    retry=retries,
    slow=st.lists(slow_windows, max_size=3).map(tuple),
    crashes=st.lists(crashes, max_size=3).map(tuple),
    flip_msg=st.one_of(st.none(), flip_msgs),
    flips=st.lists(flips, max_size=3).map(tuple),
)


@given(plan=plans)
@settings(max_examples=300, deadline=None)
def test_parse_to_spec_roundtrip(plan):
    assert FaultPlan.parse(plan.to_spec()) == plan


@given(plan=plans)
@settings(max_examples=100, deadline=None)
def test_describe_never_raises(plan):
    text = plan.describe()
    assert isinstance(text, str) and text.startswith("seed=")


class TestMalformedTokensExitTwo:
    """Bad --faults tokens are usage errors: one stderr line, exit code 2."""

    @pytest.fixture()
    def graph_file(self, tmp_path):
        path = tmp_path / "grid.txt"
        write_chaco(grid2d(4, 4), str(path))
        return str(path)

    @pytest.mark.parametrize(
        "spec",
        [
            "flip=bogus",
            "flip=1@0",
            "flip=1@2:0",
            "flipmsg=1.5",
            "flipmsg=abc",
            "flip=1",
        ],
    )
    def test_malformed_flip_specs(self, graph_file, spec, capsys):
        with pytest.raises(SystemExit) as exc:
            main(
                [
                    "run",
                    "--graph", graph_file,
                    "--np", "2",
                    "--iterations", "2",
                    "--faults", spec,
                ]
            )
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "repro run: error: --faults:" in err

    def test_flip_rank_out_of_range(self, graph_file, capsys):
        with pytest.raises(SystemExit) as exc:
            main(
                [
                    "run",
                    "--graph", graph_file,
                    "--np", "2",
                    "--iterations", "2",
                    "--faults", "flip=7@3",
                ]
            )
        assert exc.value.code == 2
        assert "rank 7" in capsys.readouterr().err
