"""Silent message corruption and the checksummed transport.

``flipmsg=PROB`` corrupts message payloads at the (virtual) wire.  On an
unprotected link the receiver silently consumes the corrupted value; on a
checksummed link (``SimCluster(checksums=True)``) the receiver's verify
step catches every corrupted attempt and pays for a NACK + retransmission
instead -- corruption costs virtual time, never correctness.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.mpi import (
    FaultPlan,
    MessageFlipSpec,
    MessageLostError,
    ORIGIN2000,
    RetryPolicy,
    SimCluster,
    corrupt_value,
    state_digest,
)


class TestCorruptValue:
    def test_every_type_changes(self):
        @dataclass
        class Rec:
            a: int
            b: float

        values = [
            True,
            7,
            3.25,
            "hello",
            b"bytes",
            (1, 2, 3),
            [1.0, 2.0],
            {"k": 5, "j": 6},
            Rec(1, 2.0),
        ]
        for value in values:
            assert corrupt_value(value, 0) != value, value

    def test_deterministic_in_token(self):
        assert corrupt_value(1234, 7) == corrupt_value(1234, 7)
        # Different tokens flip different bits of a wide-enough int.
        assert corrupt_value(1 << 40, 1) != corrupt_value(1 << 40, 2)

    def test_float_stays_finite(self):
        import math

        for token in range(64):
            flipped = corrupt_value(100.0, token)
            assert math.isfinite(flipped)
            assert flipped != 100.0

    def test_digest_detects_corruption(self):
        value = {"unit": 3, "strength": 0.75}
        reference = state_digest(value)
        assert state_digest({"unit": 3, "strength": 0.75}) == reference
        assert state_digest(corrupt_value(value, 0)) != reference


class TestFlipPlanSpecs:
    def test_parse_flip_clauses(self):
        plan = FaultPlan.parse("seed=4,flipmsg=0.25,flip=1@5:37,flip=2@3")
        assert plan.flip_msg == MessageFlipSpec(prob=0.25)
        assert len(plan.flips) == 2
        assert plan.flips_at(5, rank=1)[0].node == 37
        assert plan.flips_at(3, rank=2)[0].node is None
        assert plan.flips_at(5, rank=2) == ()

    def test_describe_mentions_flips(self):
        text = FaultPlan.parse("flipmsg=0.25,flip=1@5:37").describe()
        assert "message flips 25%" in text and "flips node 37" in text

    def test_validate_ranks_rejects_flip_target(self):
        plan = FaultPlan.parse("flip=5@3")
        with pytest.raises(ValueError, match="rank 5"):
            plan.validate_ranks(4)

    def test_malformed_flip_rejected(self):
        with pytest.raises(ValueError, match="flip"):
            FaultPlan.parse("flip=bogus")
        with pytest.raises(ValueError, match="flipmsg"):
            FaultPlan.parse("flipmsg=2.0")


def _stream(nmsgs: int = 40):
    """Rank 0 streams floats to rank 1; returns what rank 1 received."""

    def fn(comm):
        if comm.rank == 0:
            for i in range(nmsgs):
                comm.send(float(i) * 1.5, 1, tag=1)
            return comm.Wtime()
        received = [comm.recv(source=0, tag=1) for _ in range(nmsgs)]
        return received, comm.Wtime()

    return fn


class TestChecksummedTransport:
    PLAN = "seed=8,flipmsg=0.3"

    def test_unprotected_link_delivers_corruption(self):
        fn = _stream()
        clean = SimCluster(2, machine=ORIGIN2000).run(fn)
        faulty = SimCluster(
            2, machine=ORIGIN2000, faults=FaultPlan.parse(self.PLAN)
        ).run(fn)
        assert faulty[1][0] != clean[1][0]  # silent escapes
        report = SimCluster(
            2, machine=ORIGIN2000, faults=FaultPlan.parse(self.PLAN)
        )
        report.run(fn)
        tally = report.fault_state.report()
        assert tally.corrupted > 0
        assert tally.retransmits == 0  # nothing noticed

    def test_checksums_absorb_corruption(self):
        fn = _stream()
        clean = SimCluster(2, machine=ORIGIN2000, checksums=True).run(fn)
        faulty_cluster = SimCluster(
            2,
            machine=ORIGIN2000,
            faults=FaultPlan.parse(self.PLAN),
            checksums=True,
        )
        faulty = faulty_cluster.run(fn)
        # Zero escapes: every payload arrives intact...
        assert faulty[1][0] == clean[1][0]
        # ...but the retransmissions cost virtual time on the receiver.
        assert faulty[1][1] > clean[1][1]
        tally = faulty_cluster.fault_state.report()
        assert tally.corrupted > 0
        assert tally.retransmits == tally.corrupted

    def test_checksum_verify_costs_time_even_fault_free(self):
        fn = _stream()
        plain = SimCluster(2, machine=ORIGIN2000).run(fn)
        checked = SimCluster(2, machine=ORIGIN2000, checksums=True).run(fn)
        assert checked[1][1] > plain[1][1]

    def test_all_attempts_corrupted_is_lost(self):
        plan = FaultPlan(
            seed=1,
            flip_msg=MessageFlipSpec(prob=1.0),
            retry=RetryPolicy(max_attempts=3, timeout=1e-4),
        )

        def fn(comm):
            if comm.rank == 0:
                comm.send("x", 1)
            else:
                comm.recv(source=0)

        with pytest.raises(MessageLostError):
            SimCluster(2, faults=plan, checksums=True, deadlock_timeout=5.0).run(fn)

    def test_same_plan_same_clocks(self):
        fn = _stream()

        def run():
            return SimCluster(
                2,
                machine=ORIGIN2000,
                faults=FaultPlan.parse(self.PLAN),
                checksums=True,
            ).run(fn)

        assert run() == run()
