"""Tests for the deterministic fault-injection subsystem (repro.mpi.faults)."""

from __future__ import annotations

import pytest

from repro.mpi import (
    CrashEvent,
    DelaySpec,
    DropSpec,
    FaultPlan,
    FaultState,
    IDEAL,
    MessageLostError,
    ORIGIN2000,
    RetryPolicy,
    SlowWindow,
    run_mpi,
)


class TestSpecValidation:
    def test_delay_prob_range(self):
        with pytest.raises(ValueError):
            DelaySpec(prob=1.5)
        with pytest.raises(ValueError):
            DelaySpec(prob=-0.1)

    def test_delay_extra_nonnegative(self):
        with pytest.raises(ValueError):
            DelaySpec(prob=0.5, extra=-1e-3)

    def test_drop_prob_range(self):
        with pytest.raises(ValueError):
            DropSpec(prob=2.0)

    def test_retry_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=0.5)

    def test_retry_backoff_schedule(self):
        policy = RetryPolicy(max_attempts=4, timeout=1e-3, backoff=2.0)
        assert policy.attempt_timeout(1, base=9.0) == pytest.approx(1e-3)
        assert policy.attempt_timeout(2, base=9.0) == pytest.approx(2e-3)
        assert policy.attempt_timeout(3, base=9.0) == pytest.approx(4e-3)

    def test_retry_timeout_defaults_to_machine_base(self):
        policy = RetryPolicy(backoff=3.0)
        assert policy.attempt_timeout(1, base=0.01) == pytest.approx(0.01)
        assert policy.attempt_timeout(2, base=0.01) == pytest.approx(0.03)

    def test_slow_window_validation(self):
        with pytest.raises(ValueError):
            SlowWindow(rank=-1, factor=2.0)
        with pytest.raises(ValueError):
            SlowWindow(rank=0, factor=0.5)
        with pytest.raises(ValueError):
            SlowWindow(rank=0, factor=2.0, start=1.0, end=1.0)

    def test_slow_window_active_half_open(self):
        w = SlowWindow(rank=0, factor=2.0, start=1.0, end=2.0)
        assert not w.active(0.5)
        assert w.active(1.0)  # start inclusive
        assert w.active(1.999)
        assert not w.active(2.0)  # end exclusive

    def test_slow_window_open_ended(self):
        w = SlowWindow(rank=0, factor=2.0, start=1.0)
        assert w.active(1e9)

    def test_crash_event_validation(self):
        with pytest.raises(ValueError):
            CrashEvent(rank=-1, iteration=1)
        with pytest.raises(ValueError):
            CrashEvent(rank=0, iteration=0)  # iterations are 1-based


class TestPlanParse:
    def test_full_spec(self):
        plan = FaultPlan.parse(
            "seed=42, delay=0.05:0.002, drop=0.01, retry=4:0.001:3.0, "
            "slow=1:2.5:0.0:0.5, crash=2@40, crash=0@7"
        )
        assert plan.seed == 42
        assert plan.delay == DelaySpec(prob=0.05, extra=0.002)
        assert plan.drop == DropSpec(prob=0.01)
        assert plan.retry == RetryPolicy(max_attempts=4, timeout=0.001, backoff=3.0)
        assert plan.slow == (SlowWindow(rank=1, factor=2.5, start=0.0, end=0.5),)
        assert plan.crashes == (
            CrashEvent(rank=2, iteration=40),
            CrashEvent(rank=0, iteration=7),
        )

    def test_defaults(self):
        plan = FaultPlan.parse("delay=0.1")
        assert plan.seed == 0
        assert plan.delay.extra == pytest.approx(1e-3)
        assert plan.drop is None
        assert plan.retry == RetryPolicy()
        assert not plan.crashes

    def test_unknown_clause_rejected(self):
        with pytest.raises(ValueError, match="unknown fault clause"):
            FaultPlan.parse("jitter=0.5")

    def test_not_key_value_rejected(self):
        with pytest.raises(ValueError, match="key=value"):
            FaultPlan.parse("delay")

    def test_malformed_value_rejected(self):
        with pytest.raises(ValueError, match="bad fault clause"):
            FaultPlan.parse("delay=lots")

    def test_crash_without_at_rejected(self):
        with pytest.raises(ValueError, match="crash"):
            FaultPlan.parse("crash=2")

    def test_slow_needs_rank_and_factor(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("slow=1")

    def test_describe_mentions_every_fault(self):
        plan = FaultPlan.parse("seed=7,delay=0.05,drop=0.01,slow=1:3.0,crash=2@40")
        text = plan.describe()
        assert "seed=7" in text
        assert "delay" in text and "drop" in text
        assert "rank 1 slow" in text
        assert "rank 2 crashes at iteration 40" in text

    def test_queries(self):
        plan = FaultPlan.parse("slow=0:2.0:0.0:1.0,slow=0:3.0:0.5,crash=1@5")
        assert plan.crashes_at(5) == (CrashEvent(rank=1, iteration=5),)
        assert plan.crashes_at(6) == ()
        # overlapping windows multiply
        assert plan.compute_scale(0, 0.25) == pytest.approx(2.0)
        assert plan.compute_scale(0, 0.75) == pytest.approx(6.0)
        assert plan.compute_scale(0, 1.5) == pytest.approx(3.0)
        assert plan.compute_scale(1, 0.75) == pytest.approx(1.0)
        assert plan.perturbs_messages is False
        assert plan.with_overrides(drop=DropSpec(0.5)).perturbs_messages is True

    def test_validate_ranks_rejects_nonexistent_targets(self):
        plan = FaultPlan.parse("seed=1,crash=9@5")
        with pytest.raises(ValueError, match="crash rank 9 out of range"):
            plan.validate_ranks(4)
        slow = FaultPlan.parse("seed=1,slow=4:2.0")
        with pytest.raises(ValueError, match="slow rank 4 out of range"):
            slow.validate_ranks(4)
        FaultPlan.parse("seed=1,crash=3@5,slow=0:2.0").validate_ranks(4)

    def test_cluster_rejects_out_of_range_plan(self):
        plan = FaultPlan.parse("seed=1,crash=9@5")
        with pytest.raises(ValueError, match="out of range"):
            run_mpi(lambda comm: comm.rank, 4, faults=plan)


class TestDelayInjection:
    def test_certain_delay_shifts_arrival(self):
        plan = FaultPlan(seed=1, delay=DelaySpec(prob=1.0, extra=0.5))

        def fn(comm):
            if comm.rank == 0:
                comm.send("x", 1)
                return None
            comm.recv(source=0)
            return comm.Wtime()

        _, with_delay = run_mpi(fn, 2, machine=IDEAL, faults=plan)
        _, without = run_mpi(fn, 2, machine=IDEAL)
        assert with_delay == pytest.approx(without + 0.5)

    def test_zero_prob_is_noop(self):
        plan = FaultPlan(seed=1, delay=DelaySpec(prob=0.0, extra=0.5))

        def fn(comm):
            if comm.rank == 0:
                comm.send("x", 1)
                return None
            comm.recv(source=0)
            return comm.Wtime()

        assert run_mpi(fn, 2, faults=plan) == run_mpi(fn, 2)


class TestDropRetry:
    def test_certain_drop_exhausts_retries(self):
        plan = FaultPlan(
            seed=1,
            drop=DropSpec(prob=1.0),
            retry=RetryPolicy(max_attempts=3, timeout=1e-4),
        )

        def fn(comm):
            if comm.rank == 0:
                comm.send("x", 1)
            else:
                comm.recv(source=0)

        with pytest.raises(MessageLostError):
            run_mpi(fn, 2, faults=plan, deadlock_timeout=5.0)

    def test_lossy_link_delivers_in_order(self):
        plan = FaultPlan(
            seed=5,
            drop=DropSpec(prob=0.4),
            retry=RetryPolicy(max_attempts=12, timeout=1e-4),
        )

        def fn(comm):
            if comm.rank == 0:
                for i in range(50):
                    comm.isend(i, 1, tag=1)
                return None
            return [comm.recv(source=0, tag=1) for _ in range(50)]

        _, received = run_mpi(fn, 2, faults=plan, deadlock_timeout=10.0)
        assert received == list(range(50))

    def test_retries_cost_virtual_time(self):
        lossy = FaultPlan(seed=5, drop=DropSpec(prob=0.4), retry=RetryPolicy(timeout=1e-3))

        def fn(comm):
            if comm.rank == 0:
                for i in range(30):
                    comm.send(i, 1, tag=1)
                return comm.Wtime()
            for _ in range(30):
                comm.recv(source=0, tag=1)
            return comm.Wtime()

        lossy_times = run_mpi(fn, 2, machine=ORIGIN2000, faults=lossy, deadlock_timeout=10.0)
        clean_times = run_mpi(fn, 2, machine=ORIGIN2000)
        assert lossy_times[0] > clean_times[0]
        assert lossy_times[1] > clean_times[1]


class TestSlowRanks:
    def test_work_scaled_inside_window(self):
        plan = FaultPlan(slow=(SlowWindow(rank=1, factor=3.0),))

        def fn(comm):
            comm.work(1.0)
            return comm.Wtime()

        assert run_mpi(fn, 2, machine=IDEAL, faults=plan) == [1.0, 3.0]

    def test_window_expires(self):
        plan = FaultPlan(slow=(SlowWindow(rank=0, factor=10.0, start=0.0, end=5.0),))

        def fn(comm):
            comm.work(0.1)  # inside window: charged 1.0
            comm.work(1.0)  # clock 1.0, still inside: charged 10.0
            comm.work(1.0)  # clock 11.0, expired: charged 1.0
            return comm.Wtime()

        assert run_mpi(fn, 1, machine=IDEAL, faults=plan) == [pytest.approx(12.0)]


class TestDeterminismAndReport:
    def test_same_plan_same_clocks(self):
        plan = FaultPlan.parse("seed=9,delay=0.2:0.003,drop=0.1,retry=8:1e-4")

        def fn(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            for _ in range(20):
                comm.isend(comm.rank, right, tag=3)
                comm.recv(source=left, tag=3)
                comm.work(1e-4)
            return comm.Wtime()

        first = run_mpi(fn, 4, faults=plan, deadlock_timeout=10.0)
        for _ in range(3):
            assert run_mpi(fn, 4, faults=plan, deadlock_timeout=10.0) == first

    def test_fresh_fault_state_per_run(self):
        """Reusing one cluster must replay identically: run() reseeds."""
        from repro.mpi import SimCluster

        plan = FaultPlan.parse("seed=3,delay=0.5:0.01")
        cluster = SimCluster(2, machine=IDEAL, faults=plan)

        def fn(comm):
            if comm.rank == 0:
                for i in range(10):
                    comm.send(i, 1)
                return comm.Wtime()
            for _ in range(10):
                comm.recv(source=0)
            return comm.Wtime()

        assert cluster.run(fn) == cluster.run(fn)

    def test_report_counts(self):
        plan = FaultPlan.parse("seed=9,delay=1.0:0.001")
        state = FaultState(plan, nprocs=2)
        assert state.next_delay(0) == pytest.approx(0.001)
        state.count_message(0)
        state.count_message(1)
        state.count_retry(1)
        state.count_lost(1)
        state.count_crash(0)
        report = state.report()
        assert report.messages == 2
        assert report.delayed == 1
        assert report.retries == 1
        assert report.lost == 1
        assert report.crashes == 1
        assert "2 messages" in report.summary()

    def test_decision_streams_are_per_rank(self):
        plan = FaultPlan(seed=0, drop=DropSpec(prob=0.5))
        a = FaultState(plan, nprocs=2)
        b = FaultState(plan, nprocs=2)
        # rank 1's draws do not depend on how many draws rank 0 made
        for _ in range(10):
            a.next_drop(0)
        assert [a.next_drop(1) for _ in range(20)] == [
            b.next_drop(1) for _ in range(20)
        ]
