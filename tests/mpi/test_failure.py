"""Tests for the heartbeat failure detector and communicator shrinking."""

from __future__ import annotations

from math import ceil, log2

import pytest

from repro.mpi import (
    IDEAL,
    ORIGIN2000,
    DetectedFailure,
    FailureDetector,
    ShrinkError,
    run_mpi,
)
from repro.mpi.faults import FaultPlan


def _run(fn, nprocs, **kwargs):
    kwargs.setdefault("machine", IDEAL)
    kwargs.setdefault("deadlock_timeout", 5.0)
    return run_mpi(fn, nprocs, **kwargs)


class TestDetectionTime:
    def test_timeout_plus_agreement_rounds(self):
        m = ORIGIN2000
        timeout = m.heartbeat_interval * m.heartbeat_miss
        # ceil(log2 2) == 1, so two processes pay exactly one round.
        per_round = m.detection_time(2) - timeout
        assert per_round > 0
        for p in (2, 3, 4, 8):
            expected = timeout + ceil(log2(p)) * per_round
            assert m.detection_time(p) == pytest.approx(expected)

    def test_single_process_is_just_the_timeout(self):
        m = ORIGIN2000
        assert m.detection_time(1) == m.heartbeat_interval * m.heartbeat_miss

    def test_monotone_in_world_size(self):
        m = ORIGIN2000
        times = [m.detection_time(p) for p in (1, 2, 4, 8, 16)]
        assert times == sorted(times)

    def test_ideal_machine_detects_for_free(self):
        assert IDEAL.detection_time(8) == 0.0


class TestFailureDetector:
    def test_no_plan_never_fires(self):
        det = FailureDetector(None, ORIGIN2000, 4)
        assert det.poll(1) is None
        assert det.dead_ranks == frozenset()

    def test_detects_crash_at_its_iteration(self):
        plan = FaultPlan.parse("seed=1,crash=2@5")
        det = FailureDetector(plan, ORIGIN2000, 4)
        assert det.poll(4) is None
        failure = det.poll(5)
        assert isinstance(failure, DetectedFailure)
        assert failure.iteration == 5
        assert [e.rank for e in failure.events] == [2]
        # Priced for the post-crash world of 3 survivors.
        assert failure.detection_cost == ORIGIN2000.detection_time(3)
        assert det.dead_ranks == frozenset({2})

    def test_each_crash_reported_once(self):
        plan = FaultPlan.parse("seed=1,crash=2@5")
        det = FailureDetector(plan, ORIGIN2000, 4)
        assert det.poll(5) is not None
        assert det.poll(5) is None
        assert det.poll(6) is None

    def test_simultaneous_crashes_sorted_by_rank(self):
        plan = FaultPlan.parse("seed=1,crash=3@5,crash=1@5")
        det = FailureDetector(plan, ORIGIN2000, 4)
        failure = det.poll(5)
        assert [e.rank for e in failure.events] == [1, 3]
        assert det.dead_ranks == frozenset({1, 3})


class TestShrink:
    def test_survivors_get_dense_reranked_comm(self):
        def fn(comm):
            new = comm.shrink([1])
            if comm.rank == 1:
                return ("dead", new)
            return ("alive", new.rank, new.size, new.group)

        results = _run(fn, 3)
        assert results[1] == ("dead", None)
        assert results[0] == ("alive", 0, 2, (0, 2))
        assert results[2] == ("alive", 1, 2, (0, 2))

    def test_shrunken_comm_communicates(self):
        def fn(comm):
            new = comm.shrink([0])
            if new is None:
                return None
            return new.allreduce(new.rank)

        results = _run(fn, 4)
        assert results[1:] == [3, 3, 3]

    def test_every_survivor_derives_same_channel(self):
        def fn(comm):
            new = comm.shrink([2])
            if new is None:
                return None
            # A collective on the new communicator only works if all
            # survivors derived the identical comm_id.
            return new.bcast("hello" if new.rank == 0 else None, root=0)

        assert _run(fn, 4) == ["hello", "hello", None, "hello"]

    def test_quarantine_purges_in_flight_from_dead(self):
        def fn(comm):
            if comm.rank == 1:
                comm.isend("ghost", 0, tag=7)
                return comm.shrink([1])
            new = comm.shrink([1])
            if comm.rank == 0:
                # The dead rank's message is gone from the old channel.
                assert comm.iprobe(source=1, tag=7) is False
            return new.size

        results = _run(fn, 3)
        assert results[0] == 2 and results[2] == 2

    def test_world_and_local_rank_mapping(self):
        def fn(comm):
            new = comm.shrink([0, 2])
            if new is None:
                return None
            return (
                new.world_rank_of(new.rank),
                new.local_rank_of(comm.rank),  # old local == world at depth 0
                new.local_rank_of(0),
            )

        results = _run(fn, 4)
        assert results[1] == (1, 0, None)
        assert results[3] == (3, 1, None)

    def test_invalid_dead_sets_rejected(self):
        def fn(comm):
            for bad in ([], [comm.size], list(range(comm.size))):
                try:
                    comm.shrink(bad)
                except ShrinkError:
                    continue
                return f"no error for {bad}"
            return "ok"

        assert _run(fn, 2) == ["ok", "ok"]
