"""Tests for the cost-model calibration machinery."""

from __future__ import annotations

import pytest

from repro.bench.calibration import (
    CalibrationParam,
    CalibrationProblem,
    coordinate_descent,
    evaluate,
)


@pytest.fixture(scope="module")
def small_problem() -> CalibrationProblem:
    """Tables 2/5 only, p in (1, 4): fast enough for the test suite."""
    full = CalibrationProblem.tables_2_to_6(procs=(1, 4))
    keep = ("table2_hex32", "table5_rand32")
    return CalibrationProblem(
        tables={k: full.tables[k] for k in keep},
        graphs={k: full.graphs[k] for k in keep},
        params=(
            CalibrationParam("scan", (0.4e-6, 0.8e-6, 1.6e-6), "costs",
                             ("data_scan_item_cost", "unpack_scan_item_cost")),
        ),
        base_machine=full.base_machine,
        base_costs=full.base_costs,
        iterations=(20,),
        procs=(1, 4),
    )


class TestParamValidation:
    def test_bad_target(self):
        with pytest.raises(ValueError):
            CalibrationParam("x", (1.0,), "nowhere", ("latency",))

    def test_empty_grid(self):
        with pytest.raises(ValueError):
            CalibrationParam("x", (), "machine", ("latency",))


class TestApply:
    def test_overrides_reach_targets(self, small_problem):
        machine, costs = small_problem.apply({"scan": 9e-6})
        assert costs.data_scan_item_cost == 9e-6
        assert costs.unpack_scan_item_cost == 9e-6
        assert machine is small_problem.base_machine  # untouched

    def test_unknown_values_ignored(self, small_problem):
        machine, costs = small_problem.apply({"other": 1.0})
        assert costs == small_problem.base_costs


class TestEvaluate:
    def test_defaults_fit_well(self, small_problem):
        """The shipped constants land under 15 % mean error on the subset."""
        error = evaluate(small_problem, {"scan": 0.8e-6})
        assert error < 0.15

    def test_bad_constants_fit_badly(self, small_problem):
        good = evaluate(small_problem, {"scan": 0.8e-6})
        bad = evaluate(small_problem, {"scan": 20e-6})
        assert bad > 2 * good


class TestCoordinateDescent:
    def test_finds_the_grid_optimum(self, small_problem):
        grid = small_problem.params[0].grid
        landscape = {v: evaluate(small_problem, {"scan": v}) for v in grid}
        optimum = min(landscape, key=landscape.get)

        trials: list[tuple[str, float, float]] = []
        best, error = coordinate_descent(
            small_problem, sweeps=2, on_step=lambda *a: trials.append(a)
        )
        assert best["scan"] == pytest.approx(optimum)
        assert error == pytest.approx(landscape[optimum])
        assert trials  # callback fired
