"""Tests for the full-report generator."""

from __future__ import annotations

import pytest

from repro.bench.report import generate_report
from repro.bench.tables import ExperimentTable


class TestPaperRowAlignment:
    def test_reduced_axis_picks_matching_columns(self):
        table = ExperimentTable(
            experiment_id="x",
            title="T",
            row_label="Iterations",
            procs=(1, 4),
            rows={10: [0.5, 0.2]},
            paper={10: [0.51, 0.31, 0.21, 0.11, 0.06]},
        )
        rendered = table.render()
        assert "0.5100" in rendered   # paper p=1
        assert "0.2100" in rendered   # paper p=4 (third column of the full axis)
        assert "0.3100" not in rendered  # paper p=2 must NOT appear

    def test_unknown_proc_renders_dash(self):
        table = ExperimentTable(
            experiment_id="x",
            title="T",
            row_label="Iterations",
            procs=(3,),
            rows={10: [0.5]},
            paper={10: [0.51, 0.31, 0.21, 0.11, 0.06]},
        )
        assert "-" in table.render()


class TestGenerateReport:
    @pytest.fixture(scope="class")
    def report(self) -> str:
        return generate_report(quick=True)

    def test_contains_all_sections(self, report):
        for marker in (
            "Tables 2-4",
            "Tables 5-6",
            "Figure 11/16",
            "Figures 12/17",
            "Figures 13-15/18-19",
            "Tables 7-11",
            "Figures 21/22",
        ):
            assert marker in report

    def test_paper_rows_present(self, report):
        assert report.count("(paper)") >= 10

    def test_battlefield_included(self, report):
        assert "bf partition" in report
        assert "metis partition" in report

    def test_markdown_code_fences_balanced(self, report):
        assert report.count("```") % 2 == 0
