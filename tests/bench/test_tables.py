"""Tests for the experiment-table containers."""

from __future__ import annotations

import pytest

from repro.bench import ExperimentTable, SeriesFigure, format_seconds
from repro.bench.paperdata import PAPER_TABLES, PROCS


class TestFormatSeconds:
    def test_subsecond_four_figures(self):
        assert format_seconds(0.0435) == "0.0435"

    def test_seconds_three_decimals(self):
        assert format_seconds(2.2481) == "2.248"


class TestExperimentTable:
    def _table(self):
        return ExperimentTable(
            experiment_id="table2_hex32",
            title="Execution time (s) on 32-node hexagonal grids",
            row_label="Iterations",
            procs=(1, 2, 4),
            rows={10: [0.1, 0.05, 0.03], 20: [0.2, 0.11, 0.06]},
            paper={10: [0.111, 0.058, 0.0315]},
        )

    def test_speedups(self):
        table = self._table()
        assert table.speedups(20) == pytest.approx([1.0, 0.2 / 0.11, 0.2 / 0.06])

    def test_render_contains_rows_and_paper(self):
        text = self._table().render()
        assert "Iterations" in text
        assert "p=4" in text
        assert "(paper)" in text
        assert "0.1110" in text

    def test_render_without_paper(self):
        table = ExperimentTable(
            "x", "T", "Iterations", (1, 2), {5: [1.0, 0.6]}
        )
        assert "(paper)" not in table.render()


class TestSeriesFigure:
    def test_add_and_render(self):
        fig = SeriesFigure("fig", "Speedups", procs=(1, 2, 4))
        fig.add("metis", [1.0, 1.9, 3.5])
        text = fig.render()
        assert "metis" in text
        assert "3.500" in text

    def test_length_mismatch_rejected(self):
        fig = SeriesFigure("fig", "Speedups", procs=(1, 2))
        with pytest.raises(ValueError):
            fig.add("bad", [1.0])


class TestPaperData:
    def test_all_tables_cover_the_processor_axis(self):
        for name, rows in PAPER_TABLES.items():
            for iters, values in rows.items():
                assert len(values) == len(PROCS), (name, iters)

    def test_expected_tables_present(self):
        assert len(PAPER_TABLES) == 10
        assert "table7_bf_metis" in PAPER_TABLES

    def test_monotone_in_iterations_at_one_proc(self):
        for name, rows in PAPER_TABLES.items():
            ordered = [rows[i][0] for i in sorted(rows)]
            assert ordered == sorted(ordered), name

    def test_battlefield_graycode_slowdown_is_in_the_data(self):
        """Table 8's headline: 2 processors slower than 1."""
        rows = PAPER_TABLES["table8_bf_graycode"]
        assert rows[25][1] > 2 * rows[25][0]
