"""Smoke/shape tests for the experiment harness (small configurations so
the suite stays fast; the full paper-scale runs live in benchmarks/)."""

from __future__ import annotations

import pytest

from repro.bench import (
    PERSISTENT_IMBALANCE,
    hex_graph,
    run_average_once,
    run_battlefield_table,
    run_hex_table,
    run_metis_vs_pagrid,
    run_overheads,
    run_random_table,
    run_speedup_figure,
    run_static_vs_dynamic,
)


class TestHexGraphHelper:
    @pytest.mark.parametrize("n", [32, 64, 96])
    def test_sizes(self, n):
        assert hex_graph(n).num_nodes == n

    def test_rejects_other_sizes(self):
        with pytest.raises(ValueError):
            hex_graph(50)


class TestRunAverageOnce:
    def test_returns_platform_result(self):
        result = run_average_once(hex_graph(32), 4, 5)
        assert result.nprocs == 4
        assert result.iterations == 5
        assert result.elapsed > 0

    def test_dynamic_flag(self):
        result = run_average_once(hex_graph(32), 2, 10, dynamic=True)
        assert result.elapsed > 0


class TestTables:
    def test_hex_table_shape(self):
        table = run_hex_table(32, iterations_list=(5,), procs=(1, 2, 4))
        assert list(table.rows) == [5]
        assert len(table.rows[5]) == 3
        assert table.rows[5][0] > table.rows[5][2]
        assert table.experiment_id == "table2_hex32"
        assert table.paper is not None

    def test_random_table_averages_graphs(self):
        table = run_random_table(32, iterations_list=(5,), procs=(1, 2), seeds=(0, 1))
        assert len(table.rows[5]) == 2

    def test_speedup_figure(self):
        table = run_hex_table(32, iterations_list=(10,), procs=(1, 4))
        fig = run_speedup_figure([table], iterations=10)
        series = next(iter(fig.series.values()))
        assert series[0] == pytest.approx(1.0)
        assert series[1] > 1.5


class TestMetisVsPagrid:
    def test_four_series(self):
        fig = run_metis_vs_pagrid(hex_graph(32), procs=(1, 4), iterations=5)
        assert set(fig.series) == {
            "fine-metis", "fine-pagrid", "coarse-metis", "coarse-pagrid"
        }
        # coarse grain scales better than fine for the same partitioner
        assert fig.series["coarse-metis"][1] > fig.series["fine-metis"][1]


class TestStaticVsDynamic:
    def test_three_series_and_dynamic_wins_under_imbalance(self):
        fig = run_static_vs_dynamic(
            hex_graph(32), procs=(1, 4), iterations=40,
            schedule=PERSISTENT_IMBALANCE,
        )
        assert set(fig.series) == {"static", "dynamic-centralized", "dynamic-greedy"}
        assert fig.series["dynamic-greedy"][1] > fig.series["static"][1]


class TestBattlefield:
    def test_small_battlefield_table(self):
        from repro.apps.battlefield import BattlefieldApp, general_engagement
        from repro.graphs import HexGrid

        app = BattlefieldApp(general_engagement(grid=HexGrid(8, 8)))
        table = run_battlefield_table(
            "metis", steps_list=(3,), procs=(1, 2), app=app
        )
        assert table.rows[3][0] > table.rows[3][1]


class TestOverheads:
    def test_phase_breakdown_shape(self):
        result = run_overheads(hex_graph(32), procs=(2, 4), iterations=10)
        assert set(result.phases) == {2, 4}
        p2 = result.phases[2]
        assert p2.compute > 0
        assert p2.communication_overhead > 0
        # compute per rank halves when procs double
        assert result.phases[4].compute < p2.compute
        assert "p=2" in result.render()
