"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.graphs import Graph, hex32, hex64, random_connected_graph
from repro.mpi import IDEAL, ORIGIN2000
from repro.partitioning import MetisLikePartitioner


@pytest.fixture(scope="session")
def hex32_graph() -> Graph:
    return hex32()


@pytest.fixture(scope="session")
def hex64_graph() -> Graph:
    return hex64()


@pytest.fixture(scope="session")
def rand24_graph() -> Graph:
    return random_connected_graph(24, avg_degree=3.0, seed=7, name="rand24")


@pytest.fixture(scope="session")
def small_path() -> Graph:
    return Graph.from_edges(6, [(1, 2), (2, 3), (3, 4), (4, 5), (5, 6)], name="path6")


@pytest.fixture(scope="session")
def metis() -> MetisLikePartitioner:
    return MetisLikePartitioner(seed=1)


@pytest.fixture(scope="session")
def ideal_machine():
    return IDEAL


@pytest.fixture(scope="session")
def origin_machine():
    return ORIGIN2000
