"""Ablation: load-balancer invocation period.

The paper fixes "load balancing routine is invoked every 10 time steps";
this sweep shows the cost/benefit of re-checking more or less often.
"""

from __future__ import annotations

from repro.apps.imbalance import make_imbalanced_average_fn
from repro.bench import PERSISTENT_IMBALANCE, hex_graph
from repro.bench.tables import SeriesFigure
from repro.core import GreedyPairBalancer, ICPlatform, PlatformConfig
from repro.partitioning import MetisLikePartitioner


def test_ablation_lb_period(benchmark, record):
    graph = hex_graph(64)
    partition = MetisLikePartitioner(seed=1).partition(graph, 8)
    periods = (2, 5, 10, 20, 30)

    def run():
        fig = SeriesFigure(
            "ablation_lb_period",
            "LB period sweep (hex64, p=8, 60 iterations, greedy balancer)",
            procs=list(periods),
            ylabel="seconds",
        )
        times = []
        migrations = []
        for period in periods:
            config = PlatformConfig(
                iterations=60, dynamic_load_balancing=True, lb_period=period
            )
            result = ICPlatform(
                graph,
                make_imbalanced_average_fn(PERSISTENT_IMBALANCE),
                config=config,
                balancer=GreedyPairBalancer(0.25),
            ).run(partition)
            times.append(result.elapsed)
            migrations.append(len(result.migrations))
        fig.add("elapsed", times)
        fig.add("migrations", [float(m) for m in migrations])
        return fig

    fig = benchmark.pedantic(run, rounds=1, iterations=1)
    record(fig.experiment_id, fig.render())

    times = dict(zip(periods, fig.series["elapsed"]))
    migrations = dict(zip(periods, fig.series["migrations"]))
    # More frequent balancing -> more migrations.
    assert migrations[2] > migrations[30]
    # The paper's period (10) is near the sweet spot: within 15 % of the
    # best setting in the sweep.
    assert times[10] <= min(times.values()) * 1.15
