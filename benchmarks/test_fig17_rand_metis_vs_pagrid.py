"""Figure 17: Metis vs PaGrid on 64-node random graphs, fine and coarse
grain.  The paper's finding: PaGrid outperforms Metis on random graphs."""

from __future__ import annotations

from repro.bench import run_metis_vs_pagrid
from repro.graphs import random_connected_graph


def test_fig17_rand_metis_vs_pagrid(benchmark, record):
    graph = random_connected_graph(64, avg_degree=4.0, seed=0, name="rand64")
    fig = benchmark.pedantic(
        lambda: run_metis_vs_pagrid(
            graph, experiment_id="fig17_rand_metis_vs_pagrid"
        ),
        rounds=1,
        iterations=1,
    )
    record(fig.experiment_id, fig.render())

    # Coarse beats fine for both partitioners.
    assert fig.series["coarse-metis"][-1] > fig.series["fine-metis"][-1]
    assert fig.series["coarse-pagrid"][-1] > fig.series["fine-pagrid"][-1]
    # On irregular graphs the architecture-aware partitioner holds its own
    # against Metis (the paper shows it ahead; we require parity-or-better
    # within 10 % on the summed speedup across processor counts).
    metis_total = sum(fig.series["fine-metis"]) + sum(fig.series["coarse-metis"])
    pagrid_total = sum(fig.series["fine-pagrid"]) + sum(fig.series["coarse-pagrid"])
    assert pagrid_total >= 0.9 * metis_total
