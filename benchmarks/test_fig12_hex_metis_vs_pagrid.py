"""Figure 12: Metis vs PaGrid speedups, fine and coarse grain, 64-node hex
grid (PaGrid on the hypercube processor graph, Rref = 0.45)."""

from __future__ import annotations

from repro.bench import hex_graph, run_metis_vs_pagrid


def test_fig12_hex_metis_vs_pagrid(benchmark, record):
    fig = benchmark.pedantic(
        lambda: run_metis_vs_pagrid(
            hex_graph(64), experiment_id="fig12_hex_metis_vs_pagrid"
        ),
        rounds=1,
        iterations=1,
    )
    record(fig.experiment_id, fig.render())

    # Headline of the figure: coarse grain scales considerably better than
    # fine grain for BOTH partitioners (paper: ~10-11 vs ~6-7 at p=16).
    assert fig.series["coarse-metis"][-1] > fig.series["fine-metis"][-1] + 1.0
    assert fig.series["coarse-pagrid"][-1] > fig.series["fine-pagrid"][-1] + 1.0
    # On hex grids the two partitioners are in the same league (the paper
    # shows them close, Metis slightly ahead).
    assert fig.series["coarse-pagrid"][-1] >= 0.6 * fig.series["coarse-metis"][-1]
    assert fig.series["fine-pagrid"][-1] >= 0.6 * fig.series["fine-metis"][-1]
    # Coarse-grain speedups land in the paper's band at p=16.
    assert 7.0 <= fig.series["coarse-metis"][-1] <= 15.0
