"""Process-backend benchmark: event vs process schedulers on a diffusion.

Runs the same unquantized weighted-Jacobi relaxation on a hot-edge plate
under the in-thread ``event`` scheduler and the multiprocess ``process``
scheduler (ranks as OS processes, SoA arrays in shared-memory segments,
halo payloads through shared ring buffers) and measures:

* **wall seconds** -- real host time (best of ``REPEATS``) per worker
  count.  The process backend is the only scheduler that can use more
  than one core: per-rank node sweeps run concurrently in separate
  interpreters, so with ``W`` workers on ``>= W`` free cores the sweep
  phase parallelizes while the event backend serializes everything on
  one thread;
* **virtual seconds** -- the simulated makespan, which must be
  *bit-identical* across schedulers (the broker replays the event
  backend's exact arbitration order);
* **values** -- final committed node values, also required bit-identical.

Acceptance (enforced by ``_check``): values and virtual elapsed identical
across schedulers at every worker count; no shared-memory segment leaked;
and -- **only when the host actually has at least as many usable cores as
workers** -- the process backend at least ``MIN_SPEEDUP``x faster in wall
time at 4+ workers.  On smaller hosts (CI containers are often pinned to
a single core, where forked workers can only time-slice) the speedup
floor is recorded as unenforced in the JSON instead of failing the run.

Run standalone (writes ``benchmarks/results/BENCH_shm.json``)::

    PYTHONPATH=src python benchmarks/shm_scaling.py          # full
    PYTHONPATH=src python benchmarks/shm_scaling.py --quick  # CI smoke

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/shm_scaling.py -q
"""

from __future__ import annotations

import json
import os
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.apps.diffusion import hot_edge_plate, make_jacobi_fn
from repro.core import ICPlatform, PlatformConfig
from repro.mpi.shm import leaked_segments
from repro.partitioning import RowBandPartitioner

RESULTS_DIR = Path(__file__).parent / "results"

#: Wall-clock repeats per (scheduler, workers) cell; best-of is reported.
REPEATS = 3

#: Wall speedup floor for process vs event at ``FLOOR_WORKERS``+ workers,
#: enforced only when the host has that many usable cores.
MIN_SPEEDUP = 2.0
FLOOR_WORKERS = 4

#: Plate edge length (nodes = side**2) for full and quick runs.
SIDE_FULL = 320
SIDE_QUICK = 120

WORKER_COUNTS = (2, 4, 8)
WORKER_COUNTS_QUICK = (2, 4)
ITERATIONS = 10


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


# --------------------------------------------------------------------- #
# Workload
# --------------------------------------------------------------------- #


def _diffuse(scheduler: str, side: int, workers: int):
    """Unquantized Jacobi on a side x side hot-edge plate, row-banded."""
    graph, boundary, init = hot_edge_plate(side, side)
    partition = RowBandPartitioner(side, side).partition(graph, workers)
    config = PlatformConfig(
        iterations=ITERATIONS,
        store="soa",
        hash_table_length=4096,
    )
    platform = ICPlatform(
        graph,
        make_jacobi_fn(boundary, quantize=None),
        init_value=init,
        config=config,
    )
    return platform.run(partition, scheduler=scheduler, deadlock_timeout=60.0)


# --------------------------------------------------------------------- #
# Measurement
# --------------------------------------------------------------------- #


@dataclass
class CellStats:
    """One (scheduler, workers) measurement."""

    wall_seconds: float = 0.0
    virtual_seconds: float = 0.0

    def to_dict(self) -> dict:
        return {
            "wall_seconds": round(self.wall_seconds, 6),
            "virtual_seconds": round(self.virtual_seconds, 6),
        }


@dataclass
class ShmScalingResult:
    quick: bool
    side: int
    cpus: int
    workers: tuple[int, ...]
    cells: dict[str, dict[int, CellStats]] = field(default_factory=dict)
    values_identical: bool = True
    elapsed_identical: bool = True
    leaked: list[str] = field(default_factory=list)

    @property
    def num_nodes(self) -> int:
        return self.side * self.side

    def floor_enforced(self, workers: int) -> bool:
        return workers >= FLOOR_WORKERS and self.cpus >= workers

    def speedup(self, workers: int) -> float:
        return self.cells["event"][workers].wall_seconds / max(
            1e-12, self.cells["process"][workers].wall_seconds
        )

    def to_dict(self) -> dict:
        return {
            "benchmark": "shm_scaling",
            "quick": self.quick,
            "repeats": REPEATS,
            "side": self.side,
            "num_nodes": self.num_nodes,
            "iterations": ITERATIONS,
            "cpus": self.cpus,
            "workers": list(self.workers),
            "schedulers": {
                name: {str(w): stats.to_dict() for w, stats in cells.items()}
                for name, cells in self.cells.items()
            },
            "speedup": {str(w): round(self.speedup(w), 3) for w in self.workers},
            "min_speedup": MIN_SPEEDUP,
            "floor_enforced": {
                str(w): self.floor_enforced(w) for w in self.workers
            },
            "values_identical": self.values_identical,
            "elapsed_identical": self.elapsed_identical,
            "leaked_segments": self.leaked,
        }

    def render(self) -> str:
        lines = [
            f"Event vs process scheduler, {self.side}x{self.side} plate"
            f" ({self.num_nodes} nodes, {'quick' if self.quick else 'full'},"
            f" best of {REPEATS}, {self.cpus} usable cpus)",
            f"{'workers':<8} {'event (s)':>10} {'process (s)':>12}"
            f" {'speedup':>8} {'floor':>14}",
        ]
        for w in self.workers:
            floor = (
                f">= {MIN_SPEEDUP}x" if self.floor_enforced(w) else "unenforced"
            )
            lines.append(
                f"{w:<8} {self.cells['event'][w].wall_seconds:>10.4f}"
                f" {self.cells['process'][w].wall_seconds:>12.4f}"
                f" {self.speedup(w):>7.2f}x {floor:>14}"
            )
        lines.append(
            f"values identical: {self.values_identical}"
            f"  virtual elapsed identical: {self.elapsed_identical}"
            f"  leaked segments: {len(self.leaked)}"
        )
        return "\n".join(lines)


def run(results_dir: Path = RESULTS_DIR, quick: bool = False) -> ShmScalingResult:
    side = SIDE_QUICK if quick else SIDE_FULL
    workers = WORKER_COUNTS_QUICK if quick else WORKER_COUNTS
    result = ShmScalingResult(
        quick=quick, side=side, cpus=_usable_cpus(), workers=workers
    )
    result.cells = {"event": {}, "process": {}}
    for w in workers:
        outcomes = {}
        for scheduler in ("event", "process"):
            stats = CellStats()
            best = float("inf")
            for _ in range(REPEATS):
                start = time.perf_counter()
                outcome = _diffuse(scheduler, side, w)
                best = min(best, time.perf_counter() - start)
            stats.wall_seconds = best
            stats.virtual_seconds = outcome.elapsed
            outcomes[scheduler] = outcome
            result.cells[scheduler][w] = stats
        if outcomes["process"].values != outcomes["event"].values:
            result.values_identical = False
        if outcomes["process"].elapsed != outcomes["event"].elapsed:
            result.elapsed_identical = False
    result.leaked = leaked_segments()
    results_dir.mkdir(exist_ok=True)
    payload = json.dumps(result.to_dict(), indent=2) + "\n"
    (results_dir / "BENCH_shm.json").write_text(payload)
    (results_dir / "shm_scaling.txt").write_text(result.render() + "\n")
    return result


def _check(result: ShmScalingResult) -> list[str]:
    """Acceptance checks; returns a list of failure messages."""
    failures = []
    if not result.values_identical:
        failures.append("process final values differ from the event oracle")
    if not result.elapsed_identical:
        failures.append("process virtual elapsed differs from the event oracle")
    if result.leaked:
        failures.append(f"leaked shared-memory segments: {result.leaked}")
    for w in result.workers:
        if result.floor_enforced(w):
            speedup = result.speedup(w)
            if speedup < MIN_SPEEDUP:
                failures.append(
                    f"process speedup {speedup:.2f}x at {w} workers"
                    f" < {MIN_SPEEDUP}x floor ({result.cpus} cpus)"
                )
    return failures


def test_shm_scaling():
    result = run(quick=True)
    print(f"\n{result.render()}\n")
    failures = _check(result)
    assert not failures, "; ".join(failures)


if __name__ == "__main__":
    quick = "--quick" in sys.argv
    outcome = run(quick=quick)
    print(outcome.render())
    problems = _check(outcome)
    if problems:
        raise SystemExit("FAIL: " + "; ".join(problems))
