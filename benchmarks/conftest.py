"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one table or figure of the paper's evaluation
(section 5) on the virtual-time substrate, prints it next to the paper's
numbers, writes the rendering to ``benchmarks/results/``, and asserts the
*shape* claims (who wins, where scaling saturates) rather than absolute
times.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def record(results_dir):
    """Persist a rendered table/figure and echo it to stdout."""

    def _record(experiment_id: str, rendered: str) -> None:
        (results_dir / f"{experiment_id}.txt").write_text(rendered + "\n")
        print(f"\n{rendered}\n")

    return _record


@pytest.fixture(scope="session")
def battlefield_app():
    """The canonical Tables-7-11 battlefield application (32x32 general
    engagement), shared across benches since construction is cheap but the
    graph build is not free."""
    from repro.apps.battlefield import BattlefieldApp, general_engagement

    return BattlefieldApp(general_engagement())


def assert_close_shape(ours, paper, rel=0.6):
    """Every cell within a generous relative band of the paper's value.

    The substrate is a calibrated simulator, not the authors' Origin-2000;
    the default band (+-60 %) catches order-of-magnitude drift while
    tolerating model error.
    """
    for row_ours, row_paper in zip(ours, paper):
        assert abs(row_ours - row_paper) <= rel * row_paper, (
            f"{row_ours} vs paper {row_paper}"
        )
