"""Table 2: execution time on 32-node hexagonal grids (fine grain, Metis)."""

from __future__ import annotations

from repro.bench import run_hex_table
from repro.bench.paperdata import PAPER_TABLES


def test_table02_hex32(benchmark, record):
    table = benchmark.pedantic(lambda: run_hex_table(32), rounds=1, iterations=1)
    record(table.experiment_id, table.render())

    paper = PAPER_TABLES["table2_hex32"]
    # Single-processor cells are pure grain + bookkeeping: tight match.
    for iters in (10, 15, 20):
        assert abs(table.rows[iters][0] - paper[iters][0]) <= 0.15 * paper[iters][0]
    # Parallel cells: correct within a generous band, and speedup saturates
    # (16 processors buy little over 8 on a fine-grained 32-node graph).
    row = table.rows[20]
    assert row[0] > row[1] > row[2]
    assert row[3] / row[4] < 1.9  # 8 -> 16 far from a 2x improvement
    for idx in range(5):
        assert abs(row[idx] - paper[20][idx]) <= 0.6 * paper[20][idx]
