"""Hybrid sync/async execution benchmark: BSP vs boundary-only sync.

``execution="hybrid"`` keeps the boundary phase of every superstep
exactly BSP (compute cut-adjacent nodes, exchange deltas, barrier) but
lets each rank chase its *interior* frontier locally -- no messages, no
barrier -- until it drains or ``hybrid_inner_cap`` sweeps are spent.
For order-insensitive fixed-point workloads the fixed point is
unchanged while the superstep count collapses, and with it the two
costs global synchronization actually charges:

* **barriers** -- global synchronizations crossed before quiescence;
* **messages** -- point-to-point deliveries (halo exchanges happen once
  per superstep, so fewer supersteps means proportionally less halo
  traffic);
* **virtual / wall seconds** -- reported for honesty: hybrid *spends*
  compute (interior nodes relax many times per superstep) to *save*
  synchronization, so on a simulated machine where barriers are cheap
  the makespan can grow even as barrier and message counts collapse.
  The mode targets the regime where synchronization, not FLOPs, is the
  bottleneck.

Workload: quantized weighted-Jacobi relaxation on the hot-edge plate
(16x16 full, 12x12 quick), 2-way Metis partition -- interiors dominate
the cut, the GraphHP sweet spot -- run to quiescence.

Acceptance (enforced by ``_check``): hybrid reaches the same fixed
point as BSP (tolerance-equal values), crosses at least
``MIN_BARRIER_REDUCTION``x fewer barriers, delivers at least
``MIN_MESSAGE_REDUCTION``x fewer messages, and is bit-identical
hybrid-vs-hybrid across the event/threads/process backends and
``JITTER_RUNS`` perturbed host schedules.

Run standalone (writes ``benchmarks/results/BENCH_hybrid.json``)::

    PYTHONPATH=src python benchmarks/hybrid_execution.py          # full
    PYTHONPATH=src python benchmarks/hybrid_execution.py --quick  # CI smoke

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/hybrid_execution.py -q
"""

from __future__ import annotations

import json
import random
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.apps.diffusion import hot_edge_plate, make_jacobi_fn, residual
from repro.core import ICPlatform, PlatformConfig
from repro.partitioning import MetisLikePartitioner

RESULTS_DIR = Path(__file__).parent / "results"

#: Wall-clock repeats per mode; best-of is reported.
REPEATS = 3

#: Acceptance floors at matched convergence (both modes quiesced).
MIN_BARRIER_REDUCTION = 2.0
MIN_MESSAGE_REDUCTION = 1.5

#: Fixed-point agreement tolerance (the workload's quantized residual).
TOL = 1e-4

#: Perturbed host schedules for the determinism fuzz (threads backend).
JITTER_RUNS = 10
JITTER_RUNS_QUICK = 3

INNER_CAP = 64


def _make_jitter(seed: int, max_sleep: float = 2e-4):
    rng = random.Random(seed)

    def jitter() -> None:
        if rng.random() < 0.5:
            time.sleep(rng.random() * max_sleep)

    return jitter


def _run(execution: str, quick: bool, *, scheduler=None, jitter=None,
         store=None):
    rows = 12 if quick else 16
    graph, boundary, init = hot_edge_plate(rows, rows)
    partition = MetisLikePartitioner(seed=0).partition(graph, 2)
    config = PlatformConfig(
        iterations=2000,
        converge="quiescence",
        execution=execution,
        hybrid_inner_cap=INNER_CAP,
        **({"store": store} if store else {}),
    )
    platform = ICPlatform(
        graph, make_jacobi_fn(boundary, quantize=4), init_value=init,
        config=config,
    )
    outcome = platform.run(partition, scheduler=scheduler, sched_jitter=jitter)
    return outcome, graph, boundary


# --------------------------------------------------------------------- #
# Measurement
# --------------------------------------------------------------------- #


@dataclass
class ModeStats:
    """One execution mode's measurement."""

    barriers: int = 0
    messages: int = 0
    inner_sweeps: int = 0
    virtual_seconds: float = 0.0
    wall_seconds: float = 0.0
    quiesced_at: int | None = None
    residual: float = 0.0

    def to_dict(self) -> dict:
        return {
            "barriers": self.barriers,
            "messages": self.messages,
            "inner_sweeps": self.inner_sweeps,
            "virtual_seconds": round(self.virtual_seconds, 6),
            "wall_seconds": round(self.wall_seconds, 6),
            "quiesced_at": self.quiesced_at,
            "residual": self.residual,
        }


@dataclass
class HybridExecutionResult:
    quick: bool
    modes: dict[str, ModeStats] = field(default_factory=dict)
    max_value_diff: float = 0.0
    determinism: dict[str, bool] = field(default_factory=dict)

    def reduction(self, axis: str) -> float:
        return getattr(self.modes["bsp"], axis) / max(
            1, getattr(self.modes["hybrid"], axis)
        )

    def to_dict(self) -> dict:
        return {
            "benchmark": "hybrid_execution",
            "quick": self.quick,
            "repeats": REPEATS,
            "inner_cap": INNER_CAP,
            "modes": {label: s.to_dict() for label, s in self.modes.items()},
            "max_value_diff": self.max_value_diff,
            "barrier_reduction": round(self.reduction("barriers"), 3),
            "message_reduction": round(self.reduction("messages"), 3),
            "determinism": self.determinism,
        }

    def render(self) -> str:
        lines = [
            f"BSP vs hybrid execution "
            f"({'quick' if self.quick else 'full'}, best of {REPEATS}, "
            f"inner cap {INNER_CAP})",
            f"{'mode':<8} {'barriers':>9} {'messages':>9} {'inner':>7}"
            f" {'virtual (s)':>12} {'wall (s)':>9} {'quiesced':>9}",
        ]
        for label, s in self.modes.items():
            lines.append(
                f"{label:<8} {s.barriers:>9} {s.messages:>9} {s.inner_sweeps:>7}"
                f" {s.virtual_seconds:>12.4f} {s.wall_seconds:>9.4f}"
                f" {str(s.quiesced_at):>9}"
            )
        lines.append(
            f"barrier reduction: {self.reduction('barriers'):.2f}x, "
            f"message reduction: {self.reduction('messages'):.2f}x, "
            f"max fixed-point diff: {self.max_value_diff}"
        )
        lines.append(
            "determinism: "
            + ", ".join(f"{k}={v}" for k, v in self.determinism.items())
        )
        return "\n".join(lines)


def run(results_dir: Path = RESULTS_DIR, quick: bool = False) -> HybridExecutionResult:
    result = HybridExecutionResult(quick=quick)
    values = {}
    for label in ("bsp", "hybrid"):
        stats = ModeStats()
        best = float("inf")
        for _ in range(REPEATS):
            start = time.perf_counter()
            outcome, graph, boundary = _run(label, quick)
            best = min(best, time.perf_counter() - start)
        stats.wall_seconds = best
        stats.barriers = outcome.barriers
        stats.messages = outcome.messages_delivered
        stats.inner_sweeps = outcome.inner_sweeps
        stats.virtual_seconds = outcome.elapsed
        stats.quiesced_at = outcome.quiesced_at
        stats.residual = residual(graph, outcome.values, boundary)
        values[label] = outcome.values
        result.modes[label] = stats
    result.max_value_diff = max(
        abs(values["bsp"][g] - values["hybrid"][g]) for g in values["bsp"]
    )

    # Determinism fuzz: hybrid-vs-hybrid bit identity on every backend
    # and across perturbed host schedules.
    reference = values["hybrid"]
    ref_elapsed = result.modes["hybrid"].virtual_seconds
    threads, _, _ = _run("hybrid", quick, scheduler="threads")
    process, _, _ = _run("hybrid", quick, scheduler="process", store="soa")
    result.determinism["threads"] = (
        threads.values == reference and threads.elapsed == ref_elapsed
    )
    result.determinism["process"] = (
        process.values == reference and process.elapsed == ref_elapsed
    )
    runs = JITTER_RUNS_QUICK if quick else JITTER_RUNS
    jittered_ok = True
    for seed in range(runs):
        run_, _, _ = _run(
            "hybrid", quick, scheduler="threads", jitter=_make_jitter(seed)
        )
        jittered_ok = jittered_ok and (
            run_.values == reference and run_.elapsed == ref_elapsed
        )
    result.determinism[f"jitter_x{runs}"] = jittered_ok

    results_dir.mkdir(exist_ok=True)
    payload = json.dumps(result.to_dict(), indent=2) + "\n"
    (results_dir / "BENCH_hybrid.json").write_text(payload)
    (results_dir / "hybrid_execution.txt").write_text(result.render() + "\n")
    return result


def _check(result: HybridExecutionResult) -> list[str]:
    """Acceptance checks; returns a list of failure messages."""
    failures = []
    for label, stats in result.modes.items():
        if stats.quiesced_at is None:
            failures.append(f"{label}: never quiesced")
        if stats.residual > TOL:
            failures.append(f"{label}: residual {stats.residual} > {TOL}")
    if result.max_value_diff > TOL:
        failures.append(
            f"fixed points diverge by {result.max_value_diff} > {TOL}"
        )
    barriers = result.reduction("barriers")
    if barriers < MIN_BARRIER_REDUCTION:
        failures.append(
            f"barrier reduction {barriers:.2f}x < {MIN_BARRIER_REDUCTION}x"
        )
    messages = result.reduction("messages")
    if messages < MIN_MESSAGE_REDUCTION:
        failures.append(
            f"message reduction {messages:.2f}x < {MIN_MESSAGE_REDUCTION}x"
        )
    for label, ok in result.determinism.items():
        if not ok:
            failures.append(f"hybrid determinism broken: {label}")
    return failures


def test_hybrid_execution():
    result = run(quick=True)
    print(f"\n{result.render()}\n")
    failures = _check(result)
    assert not failures, "; ".join(failures)


if __name__ == "__main__":
    quick = "--quick" in sys.argv
    outcome = run(quick=quick)
    print(outcome.render())
    problems = _check(outcome)
    if problems:
        raise SystemExit("FAIL: " + "; ".join(problems))
