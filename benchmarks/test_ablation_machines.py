"""Ablation: machine models.

Goal 3 lets algorithm designers evaluate "on different parallel and
distributed architectures"; this sweep runs the same workload on the
calibrated Origin-2000, an idealized zero-cost network, and a slow
commodity-Ethernet profile.
"""

from __future__ import annotations

from repro.apps.average import FINE_GRAIN, make_average_fn
from repro.bench import hex_graph
from repro.bench.tables import SeriesFigure
from repro.core import ICPlatform, PlatformConfig
from repro.mpi import ETHERNET_CLUSTER, IDEAL, ORIGIN2000
from repro.partitioning import MetisLikePartitioner


def test_ablation_machines(benchmark, record):
    graph = hex_graph(64)
    procs = (1, 2, 4, 8, 16)
    machines = {
        "ideal": IDEAL,
        "origin2000": ORIGIN2000,
        "ethernet": ETHERNET_CLUSTER,
    }

    def run():
        fig = SeriesFigure(
            "ablation_machines",
            "Machine models, hex64 fine grain, 20 iterations (speedup)",
            procs=list(procs),
        )
        for label, machine in machines.items():
            times = []
            for p in procs:
                partition = MetisLikePartitioner(seed=1).partition(graph, p)
                config = PlatformConfig(iterations=20)
                times.append(
                    ICPlatform(graph, make_average_fn(FINE_GRAIN), config=config)
                    .run(partition, machine=machine)
                    .elapsed
                )
            fig.add(label, [times[0] / t for t in times])
        return fig

    fig = benchmark.pedantic(run, rounds=1, iterations=1)
    record(fig.experiment_id, fig.render())

    # Network quality orders the speedups at every parallel point.
    for idx in range(1, len(procs)):
        assert (
            fig.series["ideal"][idx]
            >= fig.series["origin2000"][idx]
            >= fig.series["ethernet"][idx]
        )
    # The ideal network still pays the platform's own bookkeeping, so even
    # it is sublinear; Ethernet must saturate clearly below the Origin.
    assert fig.series["ideal"][-1] < 16
    assert fig.series["ethernet"][-1] < 0.8 * fig.series["origin2000"][-1]
