"""Wall-clock runtime benchmark: event vs threads scheduler backends.

Times real-seconds execution (not virtual seconds -- both backends produce
bit-identical virtual results, which this benchmark also re-asserts) of
three reference workloads on both :class:`~repro.mpi.runtime.SimCluster`
execution backends:

``hex64_sweep``
    A 32-rank pipelined wavefront relaxation over the paper's 64-node hex
    grid (forward + backward Gauss-Seidel-style sweeps, one boundary
    hand-off per neighbour band per direction).  At most one rank is
    runnable at any instant, so this isolates pure scheduling cost: the
    threaded backend broadcast-wakes every blocked rank on every delivery,
    while the event backend hands the baton straight to the one rank the
    message unblocks.  This is the headline (acceptance) workload -- the
    event backend must be >= 3x faster.

``rand64_average``
    The bulk-synchronous neighbour-average platform run on a 64-node
    random graph -- many ranks runnable at once, transport- and
    compute-bound, so the scheduler is a small fraction of the profile.
    Included to show the event backend is never *slower* on realistic
    platform sweeps.

``battlefield``
    The battlefield simulator (two node functions, collectives, shadow
    exchange) on the Metis partition -- the heaviest realistic workload.

Run standalone (writes ``benchmarks/results/BENCH_runtime.json``)::

    PYTHONPATH=src python benchmarks/runtime_speed.py          # full
    PYTHONPATH=src python benchmarks/runtime_speed.py --quick  # CI smoke

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/runtime_speed.py -q
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.apps.average import FINE_GRAIN, make_average_fn
from repro.apps.battlefield import BattlefieldApp, general_engagement
from repro.core import ICPlatform, PlatformConfig
from repro.graphs.generators import random_connected_graph
from repro.graphs.hexgrid import hex64
from repro.mpi import IDEAL, run_mpi
from repro.partitioning import MetisLikePartitioner
from repro.partitioning.bands import RowBandPartitioner

RESULTS_DIR = Path(__file__).parent / "results"

BACKENDS = ("event", "threads")

#: Wall-clock repeats per (workload, backend); best-of is reported so a
#: single noisy CI neighbour cannot poison the comparison.
REPEATS = 3

#: The acceptance floor for the headline workload (full mode).
HEX64_MIN_SPEEDUP = 3.0


# --------------------------------------------------------------------- #
# Workloads
# --------------------------------------------------------------------- #


def _hex64_sweep(scheduler: str, quick: bool):
    """Pipelined wavefront relaxation across 32 row-band ranks of hex64."""
    graph = hex64()
    neighbors = {g: tuple(graph.neighbors(g)) for g in graph.nodes()}
    assignment = RowBandPartitioner(8, 8).partition(graph, 32).assignment
    sweeps = 10 if quick else 40

    def sweep(comm):
        rank, size = comm.rank, comm.size
        owned = [g for g in sorted(graph.nodes()) if assignment[g - 1] == rank]
        values = {g: float(g) for g in owned}
        fwd_keys = [
            g
            for g in owned
            if rank < size - 1
            and any(assignment[m - 1] == rank + 1 for m in neighbors[g])
        ]
        bwd_keys = [
            g
            for g in owned
            if rank > 0 and any(assignment[m - 1] == rank - 1 for m in neighbors[g])
        ]
        for _ in range(sweeps):
            if rank > 0:  # forward wavefront: upstream boundary first
                values.update(comm.recv(source=rank - 1, tag=1))
            for g in owned:
                acc = values.get(g, 0.0)
                for m in neighbors[g]:
                    acc += values.get(m, 0.0)
                values[g] = acc / (1 + len(neighbors[g]))
            if rank < size - 1:
                comm.send({g: values[g] for g in fwd_keys}, dest=rank + 1, tag=1)
                values.update(comm.recv(source=rank + 1, tag=2))  # backward
            for g in reversed(owned):
                acc = values.get(g, 0.0)
                for m in neighbors[g]:
                    acc += values.get(m, 0.0)
                values[g] = acc / (1 + len(neighbors[g]))
            if rank > 0:
                comm.send({g: values[g] for g in bwd_keys}, dest=rank - 1, tag=2)
        return comm.Wtime(), sorted(values.items())

    return run_mpi(sweep, 32, machine=IDEAL, scheduler=scheduler)


def _rand64_average(scheduler: str, quick: bool):
    """Platform neighbour-average on a 64-node random graph, 8 ranks."""
    graph = random_connected_graph(64, seed=0)
    partition = MetisLikePartitioner(seed=1).partition(graph, 8)
    config = PlatformConfig(iterations=8 if quick else 30)
    platform = ICPlatform(graph, make_average_fn(FINE_GRAIN), config=config)
    result = platform.run(partition, scheduler=scheduler)
    return result.elapsed, sorted(result.values.items())


def _battlefield(scheduler: str, quick: bool):
    """Battlefield simulator on the Metis partition, 8 ranks."""
    app = BattlefieldApp(general_engagement())
    graph = app.graph()
    partition = MetisLikePartitioner(seed=0, trials=4).partition(graph, 8)
    platform = ICPlatform(
        graph,
        app.node_fns(),
        init_value=app.init_value,
        config=app.platform_config(steps=2 if quick else 10),
    )
    result = platform.run(partition, scheduler=scheduler)
    return result.elapsed, sorted(result.values.items())


WORKLOADS = {
    "hex64_sweep": _hex64_sweep,
    "rand64_average": _rand64_average,
    "battlefield": _battlefield,
}


# --------------------------------------------------------------------- #
# Measurement
# --------------------------------------------------------------------- #


@dataclass
class WorkloadTiming:
    """Best-of-``REPEATS`` wall seconds per backend for one workload."""

    name: str
    seconds: dict[str, float] = field(default_factory=dict)
    identical: bool = False

    @property
    def speedup(self) -> float:
        """How many times faster the event backend ran this workload."""
        return self.seconds["threads"] / self.seconds["event"]

    def to_dict(self) -> dict:
        return {
            "event_seconds": round(self.seconds["event"], 6),
            "threads_seconds": round(self.seconds["threads"], 6),
            "speedup": round(self.speedup, 3),
            "identical_virtual_results": self.identical,
        }


@dataclass
class RuntimeSpeedResult:
    quick: bool
    workloads: dict[str, WorkloadTiming] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "benchmark": "runtime_speed",
            "quick": self.quick,
            "repeats": REPEATS,
            "workloads": {n: t.to_dict() for n, t in self.workloads.items()},
        }

    def render(self) -> str:
        lines = [
            f"Scheduler wall-clock comparison ({'quick' if self.quick else 'full'},"
            f" best of {REPEATS})",
            f"{'workload':<16} {'event (s)':>10} {'threads (s)':>12} {'speedup':>8}",
        ]
        for name, t in self.workloads.items():
            lines.append(
                f"{name:<16} {t.seconds['event']:>10.4f}"
                f" {t.seconds['threads']:>12.4f} {t.speedup:>7.2f}x"
            )
        return "\n".join(lines)


def run(results_dir: Path = RESULTS_DIR, quick: bool = False) -> RuntimeSpeedResult:
    result = RuntimeSpeedResult(quick=quick)
    for name, workload in WORKLOADS.items():
        timing = WorkloadTiming(name=name)
        outcomes = {}
        for backend in BACKENDS:
            best = float("inf")
            for _ in range(REPEATS):
                start = time.perf_counter()
                outcomes[backend] = workload(backend, quick)
                best = min(best, time.perf_counter() - start)
            timing.seconds[backend] = best
        # Bit-identical virtual outcomes (clocks and values) are part of
        # the backends' contract; a benchmark comparing different answers
        # would be meaningless.
        timing.identical = outcomes["event"] == outcomes["threads"]
        result.workloads[name] = timing
    results_dir.mkdir(exist_ok=True)
    payload = json.dumps(result.to_dict(), indent=2) + "\n"
    (results_dir / "BENCH_runtime.json").write_text(payload)
    (results_dir / "runtime_speed.txt").write_text(result.render() + "\n")
    return result


def _check(result: RuntimeSpeedResult) -> list[str]:
    """Acceptance checks; returns a list of failure messages."""
    failures = []
    for name, timing in result.workloads.items():
        if not timing.identical:
            failures.append(f"{name}: virtual results differ between backends")
    sweep = result.workloads["hex64_sweep"]
    if result.quick:
        if sweep.speedup < 1.0:  # CI smoke: event must never be slower
            failures.append(
                f"hex64_sweep: event slower than threads ({sweep.speedup:.2f}x)"
            )
    elif sweep.speedup < HEX64_MIN_SPEEDUP:
        failures.append(
            f"hex64_sweep: speedup {sweep.speedup:.2f}x < {HEX64_MIN_SPEEDUP}x"
        )
    return failures


def test_runtime_speed():
    result = run()
    print(f"\n{result.render()}\n")
    failures = _check(result)
    assert not failures, "; ".join(failures)


if __name__ == "__main__":
    quick = "--quick" in sys.argv
    outcome = run(quick=quick)
    print(outcome.render())
    problems = _check(outcome)
    if problems:
        raise SystemExit("FAIL: " + "; ".join(problems))
