"""Change-driven execution benchmark: dense vs sparse (delta) exchange.

Measures, for each workload and activation mode, three independent axes:

* **messages** -- point-to-point messages the simulated cluster delivered
  (the delta exchange's headline: unchanged shadow values are never re-sent
  and empty sends are elided entirely);
* **virtual seconds** -- the platform's simulated makespan (active-set
  computation charges update/compute cost only for recomputed nodes);
* **wall seconds** -- real host time (best of ``REPEATS``), the Python-side
  saving from actually skipping the skipped work.

Workloads:

``diffusion``
    A quantized weighted-Jacobi relaxation on the 8x8 hot-edge plate, run
    well past its fixed point -- the converging workload where the change
    frontier collapses and the delta exchange goes quiet.  Modes: dense,
    sparse, and sparse + quiescence termination (which additionally stops
    the run early instead of idling at the fixed point).
``battlefield``
    The two-round battlefield simulator -- a non-converging, multi-round
    application included to pin value-identity and to measure the
    worst-case frontier-maintenance overhead when every node keeps
    changing (no acceptance floor: the delta machinery cannot win here).

Acceptance (enforced by ``_check``): every mode's final values are
bit-identical to dense; on the diffusion workload the sparse mode delivers
at least ``MIN_MESSAGE_REDUCTION``x fewer messages and strictly less
virtual *and* wall time than dense; quiescence actually fires.

Run standalone (writes ``benchmarks/results/BENCH_sparse.json``)::

    PYTHONPATH=src python benchmarks/sparse_exchange.py          # full
    PYTHONPATH=src python benchmarks/sparse_exchange.py --quick  # CI smoke

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/sparse_exchange.py -q
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.apps.battlefield import BattlefieldApp, general_engagement
from repro.apps.diffusion import hot_edge_plate, make_jacobi_fn
from repro.core import ICPlatform, PlatformConfig
from repro.partitioning import MetisLikePartitioner

RESULTS_DIR = Path(__file__).parent / "results"

#: Wall-clock repeats per (workload, mode); best-of is reported.
REPEATS = 3

#: Acceptance floor: dense must deliver at least this many times more
#: messages than sparse on the converging diffusion workload.
MIN_MESSAGE_REDUCTION = 2.0


# --------------------------------------------------------------------- #
# Workloads
# --------------------------------------------------------------------- #


def _diffusion(activation: str, converge: str, quick: bool):
    """Quantized Jacobi on the hot-edge plate, run past its fixed point."""
    graph, boundary, init = hot_edge_plate(8, 8)
    partition = MetisLikePartitioner(seed=0).partition(graph, 4)
    config = PlatformConfig(
        iterations=250 if quick else 400,
        activation=activation,
        converge=converge,
    )
    platform = ICPlatform(
        graph, make_jacobi_fn(boundary, quantize=4), init_value=init, config=config
    )
    return platform.run(partition)


def _battlefield(activation: str, converge: str, quick: bool):
    """Two-round battlefield simulator on the Metis partition, 8 ranks."""
    app = BattlefieldApp(general_engagement())
    graph = app.graph()
    partition = MetisLikePartitioner(seed=0, trials=4).partition(graph, 8)
    platform = ICPlatform(
        graph,
        app.node_fns(),
        init_value=app.init_value,
        config=app.platform_config(
            steps=2 if quick else 10, activation=activation, converge=converge
        ),
    )
    return platform.run(partition)


#: workload -> (runner, modes); a mode is (label, activation, converge).
WORKLOADS = {
    "diffusion": (
        _diffusion,
        (
            ("dense", "dense", "fixed"),
            ("sparse", "sparse", "fixed"),
            ("sparse_quiesce", "sparse", "quiescence"),
        ),
    ),
    "battlefield": (
        _battlefield,
        (
            ("dense", "dense", "fixed"),
            ("sparse", "sparse", "fixed"),
        ),
    ),
}


# --------------------------------------------------------------------- #
# Measurement
# --------------------------------------------------------------------- #


@dataclass
class ModeStats:
    """One (workload, mode) measurement."""

    messages: int = 0
    virtual_seconds: float = 0.0
    wall_seconds: float = 0.0
    iterations: int = 0
    quiesced_at: int | None = None
    identical_to_dense: bool = False

    def to_dict(self) -> dict:
        return {
            "messages": self.messages,
            "virtual_seconds": round(self.virtual_seconds, 6),
            "wall_seconds": round(self.wall_seconds, 6),
            "iterations": self.iterations,
            "quiesced_at": self.quiesced_at,
            "identical_to_dense": self.identical_to_dense,
        }


@dataclass
class SparseExchangeResult:
    quick: bool
    workloads: dict[str, dict[str, ModeStats]] = field(default_factory=dict)

    def message_reduction(self, workload: str) -> float:
        modes = self.workloads[workload]
        return modes["dense"].messages / max(1, modes["sparse"].messages)

    def to_dict(self) -> dict:
        return {
            "benchmark": "sparse_exchange",
            "quick": self.quick,
            "repeats": REPEATS,
            "workloads": {
                name: {label: stats.to_dict() for label, stats in modes.items()}
                for name, modes in self.workloads.items()
            },
            "diffusion_message_reduction": round(
                self.message_reduction("diffusion"), 3
            ),
        }

    def render(self) -> str:
        lines = [
            f"Dense vs sparse (delta) exchange "
            f"({'quick' if self.quick else 'full'}, best of {REPEATS})",
            f"{'workload':<12} {'mode':<15} {'messages':>9} {'virtual (s)':>12}"
            f" {'wall (s)':>9} {'identical':>10}",
        ]
        for name, modes in self.workloads.items():
            for label, stats in modes.items():
                quiesce = (
                    f"  (quiesced @ {stats.quiesced_at})"
                    if stats.quiesced_at is not None
                    else ""
                )
                lines.append(
                    f"{name:<12} {label:<15} {stats.messages:>9}"
                    f" {stats.virtual_seconds:>12.4f} {stats.wall_seconds:>9.4f}"
                    f" {str(stats.identical_to_dense):>10}{quiesce}"
                )
        lines.append(
            f"diffusion message reduction: "
            f"{self.message_reduction('diffusion'):.2f}x"
        )
        return "\n".join(lines)


def run(results_dir: Path = RESULTS_DIR, quick: bool = False) -> SparseExchangeResult:
    result = SparseExchangeResult(quick=quick)
    for name, (runner, modes) in WORKLOADS.items():
        stats_by_label: dict[str, ModeStats] = {}
        values_by_label: dict[str, list] = {}
        for label, activation, converge in modes:
            stats = ModeStats()
            best = float("inf")
            for _ in range(REPEATS):
                start = time.perf_counter()
                outcome = runner(activation, converge, quick)
                best = min(best, time.perf_counter() - start)
            stats.wall_seconds = best
            stats.messages = outcome.messages_delivered
            stats.virtual_seconds = outcome.elapsed
            stats.iterations = outcome.iterations
            stats.quiesced_at = outcome.quiesced_at
            values_by_label[label] = sorted(outcome.values.items())
            stats_by_label[label] = stats
        for label, stats in stats_by_label.items():
            stats.identical_to_dense = (
                values_by_label[label] == values_by_label["dense"]
            )
        result.workloads[name] = stats_by_label
    results_dir.mkdir(exist_ok=True)
    payload = json.dumps(result.to_dict(), indent=2) + "\n"
    (results_dir / "BENCH_sparse.json").write_text(payload)
    (results_dir / "sparse_exchange.txt").write_text(result.render() + "\n")
    return result


def _check(result: SparseExchangeResult) -> list[str]:
    """Acceptance checks; returns a list of failure messages."""
    failures = []
    for name, modes in result.workloads.items():
        for label, stats in modes.items():
            if not stats.identical_to_dense:
                failures.append(f"{name}/{label}: values differ from dense")
    diffusion = result.workloads["diffusion"]
    reduction = result.message_reduction("diffusion")
    if reduction < MIN_MESSAGE_REDUCTION:
        failures.append(
            f"diffusion: message reduction {reduction:.2f}x"
            f" < {MIN_MESSAGE_REDUCTION}x"
        )
    if diffusion["sparse"].virtual_seconds >= diffusion["dense"].virtual_seconds:
        failures.append(
            f"diffusion: sparse virtual time"
            f" {diffusion['sparse'].virtual_seconds:.4f}s not below dense"
            f" {diffusion['dense'].virtual_seconds:.4f}s"
        )
    if diffusion["sparse"].wall_seconds >= diffusion["dense"].wall_seconds:
        failures.append(
            f"diffusion: sparse wall time {diffusion['sparse'].wall_seconds:.4f}s"
            f" not below dense {diffusion['dense'].wall_seconds:.4f}s"
        )
    if diffusion["sparse_quiesce"].quiesced_at is None:
        failures.append("diffusion: quiescence termination never fired")
    return failures


def test_sparse_exchange():
    result = run()
    print(f"\n{result.render()}\n")
    failures = _check(result)
    assert not failures, "; ".join(failures)


if __name__ == "__main__":
    quick = "--quick" in sys.argv
    outcome = run(quick=quick)
    print(outcome.render())
    problems = _check(outcome)
    if problems:
        raise SystemExit("FAIL: " + "; ".join(problems))
