"""Table 6: execution time on 64-node random graphs (mean over 5 graphs)."""

from __future__ import annotations

from repro.bench import run_random_table
from repro.bench.paperdata import PAPER_TABLES


def test_table06_rand64(benchmark, record):
    table = benchmark.pedantic(lambda: run_random_table(64), rounds=1, iterations=1)
    record(table.experiment_id, table.render())

    paper = PAPER_TABLES["table6_rand64"]
    for iters in (10, 15, 20):
        assert abs(table.rows[iters][0] - paper[iters][0]) <= 0.15 * paper[iters][0]
    row = table.rows[20]
    for idx in range(5):
        assert abs(row[idx] - paper[20][idx]) <= 0.6 * paper[20][idx]
    assert row[3] / row[4] < 1.6  # saturation between 8 and 16
