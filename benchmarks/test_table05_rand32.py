"""Table 5: execution time on 32-node random graphs (mean over 5 graphs)."""

from __future__ import annotations

from repro.bench import run_random_table
from repro.bench.paperdata import PAPER_TABLES


def test_table05_rand32(benchmark, record):
    table = benchmark.pedantic(lambda: run_random_table(32), rounds=1, iterations=1)
    record(table.experiment_id, table.render())

    paper = PAPER_TABLES["table5_rand32"]
    for iters in (10, 15, 20):
        assert abs(table.rows[iters][0] - paper[iters][0]) <= 0.15 * paper[iters][0]
    row = table.rows[20]
    for idx in range(5):
        assert abs(row[idx] - paper[20][idx]) <= 0.6 * paper[20][idx]
    # Random graphs saturate harder than hex grids (irregular cuts): the
    # paper's p=16 is WORSE than p=8; ours must at least be nearly flat.
    assert row[3] / row[4] < 1.5
