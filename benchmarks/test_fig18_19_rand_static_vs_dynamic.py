"""Figures 18/19: static vs dynamic partitioning on 64- and 32-node random
graphs under dynamic imbalance (same protocol note as Figures 13-15)."""

from __future__ import annotations

import pytest

from repro.bench import PERSISTENT_IMBALANCE, run_static_vs_dynamic
from repro.graphs import random_connected_graph


@pytest.mark.parametrize(
    "nodes,experiment_id",
    [
        (64, "fig18_static_vs_dynamic_rand64"),
        (32, "fig19_static_vs_dynamic_rand32"),
    ],
)
def test_static_vs_dynamic_random(benchmark, record, nodes, experiment_id):
    graph = random_connected_graph(nodes, avg_degree=4.0, seed=0, name=f"rand{nodes}")
    fig = benchmark.pedantic(
        lambda: run_static_vs_dynamic(
            graph,
            schedule=PERSISTENT_IMBALANCE,
            iterations=60,
            experiment_id=experiment_id,
        ),
        rounds=1,
        iterations=1,
    )
    record(fig.experiment_id, fig.render())

    static = fig.series["static"]
    greedy = fig.series["dynamic-greedy"]
    for idx in range(1, len(fig.procs)):
        assert greedy[idx] > static[idx] * 0.95
    assert sum(greedy[1:]) > sum(static[1:]) * 1.03
