"""Figure 11: speedup plots for 32/64/96-node hexagonal grids (Metis)."""

from __future__ import annotations

from repro.bench import run_hex_table, run_speedup_figure


def test_fig11_hex_speedup(benchmark, record):
    def build():
        tables = [run_hex_table(n, iterations_list=(20,)) for n in (32, 64, 96)]
        return run_speedup_figure(
            tables,
            iterations=20,
            experiment_id="fig11_hex_speedup",
            title="Speed-up plots for static partition (hex grids, Metis)",
        )

    fig = benchmark.pedantic(build, rounds=1, iterations=1)
    record(fig.experiment_id, fig.render())

    s32 = fig.series["32-node hexagonal grids"]
    s64 = fig.series["64-node hexagonal grids"]
    s96 = fig.series["96-node hexagonal grids"]
    # Larger graphs scale further (paper: ~5 / ~7 / ~8 at p=16).
    assert s32[-1] < s64[-1] < s96[-1]
    # All speedups exceed 1 past a single processor and stay below linear.
    for series in (s32, s64, s96):
        assert series[0] == 1.0
        assert all(s > 1.0 for s in series[1:])
        assert series[-1] < 16
    # Paper's p=16 band: 4.8 (32-node) to 8.3 (96-node).
    assert 3.0 <= s32[-1] <= 7.5
    assert 5.0 <= s96[-1] <= 12.0
