"""Integrity-protection benchmark: what end-to-end data integrity costs.

Not part of the paper's evaluation -- it measures the silent-corruption
protection layered onto the platform: checksummed transport, per-superstep
partition-state digests, and shadow-replica surgical repair.  Two workloads
(the 1024-hex battlefield and a fine-grain Jacobi diffusion plate) are each
run fault-free at ``off`` / ``checksum`` / ``full`` to price the steady-state
overhead, then with one boundary-node memory flip injected mid-run to
compare the ``full`` surgical repair against the ``digest`` checkpoint
rollback -- and against the unprotected run, where the flip silently
corrupts the final answer.

Run standalone (writes ``benchmarks/results/BENCH_integrity.json``)::

    PYTHONPATH=src python benchmarks/integrity_overhead.py

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/integrity_overhead.py -q
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.bench import IntegrityComparison, run_integrity_comparison

RESULTS_DIR = Path(__file__).parent / "results"


def run(results_dir: Path = RESULTS_DIR) -> IntegrityComparison:
    comparison = run_integrity_comparison(
        nprocs=4,
        battlefield_steps=10,
        plate_dims=(16, 16),
        plate_iterations=30,
        flip_rank=1,
        checkpoint_period=5,
    )
    results_dir.mkdir(exist_ok=True)
    payload = json.dumps(comparison.to_dict(), indent=2) + "\n"
    (results_dir / "BENCH_integrity.json").write_text(payload)
    (results_dir / "integrity_overhead.txt").write_text(comparison.render() + "\n")
    return comparison


def test_integrity_overhead():
    comparison = run()
    print(f"\n{comparison.render()}\n")
    for workload in comparison.workloads.values():
        # Protection costs something, but not much: checksums + digests stay
        # within a modest fraction of the unprotected runtime.
        for level in ("checksum", "full"):
            run_ = workload.protection[level]
            assert run_.overhead_pct is not None and run_.overhead_pct > 0.0
            assert run_.overhead_pct < 25.0, (
                f"{workload.name}/{level}: {run_.overhead_pct:.1f}% overhead"
            )
            # Fault-free protected runs are transparent.
            assert run_.values_match_baseline
        # Unprotected: the flip silently corrupts the final answer.
        assert not workload.flip["off"].values_match_baseline
        # Protected: zero silent escapes, by either recovery route.
        assert workload.zero_escapes
        assert workload.flip["digest"].rollbacks == 1
        assert workload.flip["digest"].repairs == 0
        assert workload.flip["full"].repairs == 1
        assert workload.flip["full"].rollbacks == 0
        # The headline claim: fixing one node from its replica beats
        # rolling every rank back to a checkpoint and re-executing.
        assert workload.repair_beats_rollback, (
            f"{workload.name}: repair {workload.flip['full'].elapsed:.4f}s vs "
            f"rollback {workload.flip['digest'].elapsed:.4f}s"
        )


if __name__ == "__main__":
    result = run()
    print(result.render())
    for workload in result.workloads.values():
        if not (workload.zero_escapes and workload.repair_beats_rollback):
            raise SystemExit(f"FAIL: {workload.name}")
