"""Ablation: the Figure-8a overlapped communication pipeline vs the basic
Figure-8 sequence (a design enhancement the thesis reports as underway).

"A different version using MPI_Irecv() ... could result in significant
performance improvement for applications with unstructured communication
and possibly coarse grain size for the node."
"""

from __future__ import annotations

from repro.apps.average import COARSE_GRAIN, FINE_GRAIN, make_average_fn
from repro.bench import hex_graph
from repro.bench.tables import SeriesFigure
from repro.core import ICPlatform, PlatformConfig
from repro.graphs import random_connected_graph
from repro.partitioning import MetisLikePartitioner


def _elapsed(graph, nprocs, grain, overlap, machine=None):
    partition = MetisLikePartitioner(seed=1).partition(graph, nprocs)
    config = PlatformConfig(iterations=20, overlap_communication=overlap)
    platform = ICPlatform(graph, make_average_fn(grain), config=config)
    kwargs = {"machine": machine} if machine is not None else {}
    return platform.run(partition, **kwargs).elapsed


def test_ablation_overlap(benchmark, record):
    graphs = {
        "hex64": hex_graph(64),
        "rand64": random_connected_graph(64, avg_degree=4.0, seed=0, name="rand64"),
    }
    procs = (2, 4, 8, 16)

    def run():
        fig = SeriesFigure(
            "ablation_overlap",
            "Basic (Fig 8) vs overlapped (Fig 8a) pipeline, seconds",
            procs=list(procs),
            ylabel="seconds",
        )
        for name, graph in graphs.items():
            for grain, glabel in ((FINE_GRAIN, "fine"), (COARSE_GRAIN, "coarse")):
                fig.add(
                    f"{name}-{glabel}-basic",
                    [_elapsed(graph, p, grain, overlap=False) for p in procs],
                )
                fig.add(
                    f"{name}-{glabel}-overlap",
                    [_elapsed(graph, p, grain, overlap=True) for p in procs],
                )
        return fig

    fig = benchmark.pedantic(run, rounds=1, iterations=1)
    record(fig.experiment_id, fig.render())

    # The overlapped pipeline never loses, and wins a few percent on the
    # calibrated Origin (its latency is small relative to the grain).
    improvements = []
    for name in graphs:
        for glabel in ("fine", "coarse"):
            basic = fig.series[f"{name}-{glabel}-basic"]
            overlap = fig.series[f"{name}-{glabel}-overlap"]
            for b, o in zip(basic, overlap):
                assert o <= b * 1.02
                improvements.append((b - o) / b)
    assert max(improvements) > 0.03

    # Where latency is the bottleneck -- the thesis's "significant
    # performance improvement" claim -- the win is large.
    from repro.mpi import MachineModel

    slow = MachineModel(name="high-latency", latency=2e-3, bandwidth=50e6)
    basic = _elapsed(graphs["hex64"], 8, FINE_GRAIN, overlap=False, machine=slow)
    overlapped = _elapsed(graphs["hex64"], 8, FINE_GRAIN, overlap=True, machine=slow)
    # Only the internal-node compute (roughly half the nodes at p=8) is
    # available to hide the 2 ms flight behind, so the win is partial.
    assert overlapped < basic * 0.9
