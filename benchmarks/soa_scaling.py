"""Struct-of-arrays store benchmark: object vs soa on a large diffusion.

Runs the same unquantized weighted-Jacobi relaxation on a hot-edge plate
under both node-state representations and measures:

* **wall seconds** -- real host time (best of ``REPEATS``), the headline:
  the soa store computes each sweep in one vectorized numpy pass instead
  of one Python view/compute/commit cycle per node;
* **virtual seconds** -- the platform's simulated makespan, which must be
  *bit-identical* across stores (the bulk pipeline replays the scalar
  path's exact charge sequence);
* **values** -- final committed node values, also required bit-identical
  (the object store is the conformance oracle).

The full run uses a 320x320 plate (102,400 nodes) over 4 ranks and must
show at least ``MIN_SPEEDUP``x; ``--quick`` shrinks the plate to 120x120
(14,400 nodes) with a correspondingly lower ``MIN_SPEEDUP_QUICK`` floor,
since the fixed per-iteration costs (halo packing, barriers, the scalar
charge replay) amortize over fewer nodes.

Acceptance (enforced by ``_check``): values and virtual elapsed identical
across stores; soa at least ``MIN_SPEEDUP``x (full) or
``MIN_SPEEDUP_QUICK``x (quick) faster in wall time.

Run standalone (writes ``benchmarks/results/BENCH_soa.json``)::

    PYTHONPATH=src python benchmarks/soa_scaling.py          # full
    PYTHONPATH=src python benchmarks/soa_scaling.py --quick  # CI smoke

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/soa_scaling.py -q
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.apps.diffusion import hot_edge_plate, make_jacobi_fn
from repro.core import ICPlatform, PlatformConfig
from repro.partitioning import RowBandPartitioner

RESULTS_DIR = Path(__file__).parent / "results"

#: Wall-clock repeats per store; best-of is reported.
REPEATS = 3

#: Acceptance floor for the full-size (320x320, 102,400-node) run.
MIN_SPEEDUP = 5.0

#: Acceptance floor for ``--quick`` (120x120): per-iteration fixed costs
#: amortize over 7x fewer nodes, so the vectorization win is smaller.
MIN_SPEEDUP_QUICK = 3.0

#: Plate edge length (nodes = side**2) for full and quick runs.
SIDE_FULL = 320
SIDE_QUICK = 120

RANKS = 4
ITERATIONS = 10


# --------------------------------------------------------------------- #
# Workload
# --------------------------------------------------------------------- #


def _diffuse(store: str, side: int):
    """Unquantized Jacobi on a side x side hot-edge plate, row-banded."""
    graph, boundary, init = hot_edge_plate(side, side)
    partition = RowBandPartitioner(side, side).partition(graph, RANKS)
    config = PlatformConfig(
        iterations=ITERATIONS,
        store=store,
        # One bucket per ~25 records at full size; identical for both
        # stores so the hash-probe charges cancel out of the comparison.
        hash_table_length=4096,
    )
    platform = ICPlatform(
        graph,
        make_jacobi_fn(boundary, quantize=None),
        init_value=init,
        config=config,
    )
    return platform.run(partition, deadlock_timeout=60.0)


# --------------------------------------------------------------------- #
# Measurement
# --------------------------------------------------------------------- #


@dataclass
class StoreStats:
    """One store's measurement."""

    wall_seconds: float = 0.0
    virtual_seconds: float = 0.0
    iterations: int = 0

    def to_dict(self) -> dict:
        return {
            "wall_seconds": round(self.wall_seconds, 6),
            "virtual_seconds": round(self.virtual_seconds, 6),
            "iterations": self.iterations,
        }


@dataclass
class SparseGeometryStats:
    """Sparse bulk-view CSR-geometry cache measurement (satellite of the
    process-backend PR): repeated change-driven sweeps over a stable
    frontier reuse the gather geometry instead of rebuilding it."""

    calls: int = 0
    hits: int = 0
    cold_seconds: float = 0.0
    warm_seconds: float = 0.0

    def reuse_speedup(self) -> float:
        return self.cold_seconds / max(1e-12, self.warm_seconds)

    def to_dict(self) -> dict:
        return {
            "calls": self.calls,
            "hits": self.hits,
            "cold_seconds": round(self.cold_seconds, 6),
            "warm_seconds": round(self.warm_seconds, 6),
            "reuse_speedup": round(self.reuse_speedup(), 3),
        }


@dataclass
class SoAScalingResult:
    quick: bool
    side: int
    stores: dict[str, StoreStats] = field(default_factory=dict)
    values_identical: bool = False
    elapsed_identical: bool = False
    sparse_geometry: SparseGeometryStats = field(
        default_factory=SparseGeometryStats
    )

    @property
    def num_nodes(self) -> int:
        return self.side * self.side

    @property
    def min_speedup(self) -> float:
        return MIN_SPEEDUP_QUICK if self.quick else MIN_SPEEDUP

    def speedup(self) -> float:
        return self.stores["object"].wall_seconds / max(
            1e-12, self.stores["soa"].wall_seconds
        )

    def to_dict(self) -> dict:
        return {
            "benchmark": "soa_scaling",
            "quick": self.quick,
            "repeats": REPEATS,
            "side": self.side,
            "num_nodes": self.num_nodes,
            "ranks": RANKS,
            "iterations": ITERATIONS,
            "stores": {name: stats.to_dict() for name, stats in self.stores.items()},
            "speedup": round(self.speedup(), 3),
            "min_speedup": self.min_speedup,
            "values_identical": self.values_identical,
            "elapsed_identical": self.elapsed_identical,
            "sparse_geometry_cache": self.sparse_geometry.to_dict(),
        }

    def render(self) -> str:
        lines = [
            f"Object vs struct-of-arrays store, {self.side}x{self.side} plate"
            f" ({self.num_nodes} nodes, {RANKS} ranks,"
            f" {'quick' if self.quick else 'full'}, best of {REPEATS})",
            f"{'store':<8} {'wall (s)':>9} {'virtual (s)':>12} {'iters':>6}",
        ]
        for name, stats in self.stores.items():
            lines.append(
                f"{name:<8} {stats.wall_seconds:>9.4f}"
                f" {stats.virtual_seconds:>12.4f} {stats.iterations:>6}"
            )
        lines.append(
            f"speedup: {self.speedup():.2f}x (floor {self.min_speedup}x)"
            f"  values identical: {self.values_identical}"
            f"  virtual elapsed identical: {self.elapsed_identical}"
        )
        sg = self.sparse_geometry
        lines.append(
            f"sparse CSR-geometry cache: {sg.hits}/{sg.calls} hits,"
            f" cold {sg.cold_seconds:.4f}s vs warm {sg.warm_seconds:.4f}s"
            f" ({sg.reuse_speedup():.2f}x reuse speedup)"
        )
        return "\n".join(lines)


def _measure_sparse_geometry(side: int) -> SparseGeometryStats:
    """Time repeated sparse bulk views over a stable active frontier.

    Models a change-driven sweep whose frontier has stabilized: the same
    10% band of nodes is gathered every superstep.  ``cold`` clears the
    per-topology geometry memo before each call (the pre-cache behaviour,
    rebuilding the CSR slice geometry every sweep); ``warm`` lets the
    memo hit.  Kernel caches travel with the geometry, so the warm path
    skips both the positions hashing *and* the numpy gather setup.
    """
    import numpy as np

    from repro.core.soastore import SoAStore

    graph, _boundary, init = hot_edge_plate(side, side)
    store = SoAStore(0, graph, [0] * graph.num_nodes, init)
    frontier = np.arange(0, store.num_owned(), 10, dtype=np.intp)
    stats = SparseGeometryStats()
    rounds = 50
    topo = store.bulk_topology()

    start = time.perf_counter()
    for i in range(rounds):
        topo.sparse_cache.clear()
        store.bulk_view(frontier, iteration=i, round_idx=0)
    stats.cold_seconds = time.perf_counter() - start

    topo.sparse_cache.clear()
    store.sparse_geom_hits = store.sparse_geom_misses = 0
    start = time.perf_counter()
    for i in range(rounds):
        store.bulk_view(frontier, iteration=i, round_idx=0)
    stats.warm_seconds = time.perf_counter() - start
    stats.calls = rounds
    stats.hits = store.sparse_geom_hits
    return stats


def run(results_dir: Path = RESULTS_DIR, quick: bool = False) -> SoAScalingResult:
    side = SIDE_QUICK if quick else SIDE_FULL
    result = SoAScalingResult(quick=quick, side=side)
    outcomes = {}
    for store in ("soa", "object"):
        stats = StoreStats()
        best = float("inf")
        for _ in range(REPEATS):
            start = time.perf_counter()
            outcome = _diffuse(store, side)
            best = min(best, time.perf_counter() - start)
        stats.wall_seconds = best
        stats.virtual_seconds = outcome.elapsed
        stats.iterations = outcome.iterations
        outcomes[store] = outcome
        result.stores[store] = stats
    result.values_identical = outcomes["soa"].values == outcomes["object"].values
    result.elapsed_identical = outcomes["soa"].elapsed == outcomes["object"].elapsed
    result.sparse_geometry = _measure_sparse_geometry(side)
    results_dir.mkdir(exist_ok=True)
    payload = json.dumps(result.to_dict(), indent=2) + "\n"
    (results_dir / "BENCH_soa.json").write_text(payload)
    (results_dir / "soa_scaling.txt").write_text(result.render() + "\n")
    return result


def _check(result: SoAScalingResult) -> list[str]:
    """Acceptance checks; returns a list of failure messages."""
    failures = []
    if not result.values_identical:
        failures.append("soa final values differ from the object oracle")
    if not result.elapsed_identical:
        failures.append("soa virtual elapsed differs from the object oracle")
    speedup = result.speedup()
    if speedup < result.min_speedup:
        failures.append(
            f"soa speedup {speedup:.2f}x < {result.min_speedup}x floor"
        )
    sg = result.sparse_geometry
    if sg.hits != sg.calls - 1:
        failures.append(
            f"sparse geometry cache hit {sg.hits}/{sg.calls} warm calls"
            " (expected all but the first)"
        )
    return failures


def test_soa_scaling():
    result = run()
    print(f"\n{result.render()}\n")
    failures = _check(result)
    assert not failures, "; ".join(failures)


if __name__ == "__main__":
    quick = "--quick" in sys.argv
    outcome = run(quick=quick)
    print(outcome.render())
    problems = _check(outcome)
    if problems:
        raise SystemExit("FAIL: " + "; ".join(problems))
