"""Tables 7-11: battlefield simulator runtimes under the five initial
partitioning schemes (Metis, gray-code BF, row band, column band,
rectangular band) on the 32x32 general-engagement battlefield."""

from __future__ import annotations

import pytest

from repro.bench import run_battlefield_table
from repro.bench.paperdata import PAPER_TABLES


@pytest.fixture(scope="module")
def tables(battlefield_app):
    """All five tables computed once (each cell is a full platform run)."""
    return {
        scheme: run_battlefield_table(scheme, app=battlefield_app)
        for scheme in ("metis", "bf", "rowband", "colband", "rectband")
    }


def test_table07_battlefield_metis(benchmark, record, tables):
    table = benchmark.pedantic(lambda: tables["metis"], rounds=1, iterations=1)
    record(table.experiment_id, table.render())
    paper = PAPER_TABLES["table7_bf_metis"]
    # Sequential column: calibrated (per-step cost decays as attrition bites).
    for steps in (5, 15, 25):
        assert abs(table.rows[steps][0] - paper[steps][0]) <= 0.2 * paper[steps][0]
    # Parallel runs always beat sequential and improve through p=16.
    row = table.rows[25]
    assert row == sorted(row, reverse=True)


def test_table08_battlefield_graycode(benchmark, record, tables):
    table = benchmark.pedantic(lambda: tables["bf"], rounds=1, iterations=1)
    record(table.experiment_id, table.render())
    # The headline: the fine-grained gray-code embedding is CATASTROPHIC --
    # 2 processors run slower than 1 (paper: 5.75 s vs 2.26 s at 25 steps).
    row = table.rows[25]
    assert row[1] > 1.5 * row[0]
    paper = PAPER_TABLES["table8_bf_graycode"]
    assert abs(row[1] - paper[25][1]) <= 0.5 * paper[25][1]


def test_table09_battlefield_rowband(benchmark, record, tables):
    table = benchmark.pedantic(lambda: tables["rowband"], rounds=1, iterations=1)
    record(table.experiment_id, table.render())
    row = table.rows[25]
    assert row[4] < row[0]  # still profitable at p=16
    # Bands are worse than Metis at scale.
    assert row[4] > tables["metis"].rows[25][4] * 0.95


def test_table10_battlefield_colband(benchmark, record, tables):
    table = benchmark.pedantic(lambda: tables["colband"], rounds=1, iterations=1)
    record(table.experiment_id, table.render())
    row = table.rows[25]
    assert row[4] < row[0]
    assert row[4] > tables["metis"].rows[25][4] * 0.95


def test_table11_battlefield_rectband(benchmark, record, tables):
    table = benchmark.pedantic(lambda: tables["rectband"], rounds=1, iterations=1)
    record(table.experiment_id, table.render())
    row = table.rows[25]
    # Rectangular blocks beat both band schemes (lower perimeter), as in
    # the paper's Figure 20 top tier.
    assert row[4] < tables["rowband"].rows[25][4]
    assert row[4] < tables["colband"].rows[25][4]
