"""Ablation: partitioner plug-ins head-to-head on platform runtime.

The test-bed goal in action: every partitioner in the library drives the
same fine-grained hex64 workload, and the runtime (not just the edge cut)
ranks them.
"""

from __future__ import annotations

from repro.apps.average import FINE_GRAIN, make_average_fn
from repro.bench import hex_graph
from repro.bench.tables import SeriesFigure
from repro.core import ICPlatform, PlatformConfig
from repro.partitioning import (
    BfsGreedyPartitioner,
    JostleLikePartitioner,
    MetisLikePartitioner,
    RandomPartitioner,
    RoundRobinPartitioner,
    SpectralPartitioner,
)


def test_ablation_partitioners(benchmark, record):
    graph = hex_graph(64)
    procs = (2, 4, 8, 16)
    partitioners = {
        "metis": MetisLikePartitioner(seed=1),
        "jostle": JostleLikePartitioner(seed=1),
        "spectral": SpectralPartitioner(seed=1),
        "bfsgreedy": BfsGreedyPartitioner(seed=1),
        "random": RandomPartitioner(seed=1),
        "roundrobin": RoundRobinPartitioner(),
    }

    def run():
        fig = SeriesFigure(
            "ablation_partitioners",
            "Partitioner plug-ins, hex64 fine grain, 20 iterations (seconds)",
            procs=list(procs),
            ylabel="seconds",
        )
        for label, partitioner in partitioners.items():
            times = []
            for p in procs:
                partition = partitioner.partition(graph, p)
                config = PlatformConfig(iterations=20)
                times.append(
                    ICPlatform(graph, make_average_fn(FINE_GRAIN), config=config)
                    .run(partition)
                    .elapsed
                )
            fig.add(label, times)
        return fig

    fig = benchmark.pedantic(run, rounds=1, iterations=1)
    record(fig.experiment_id, fig.render())

    # Locality-aware partitioners (metis, jostle, spectral, bfsgreedy) beat
    # the locality-blind ones (random, roundrobin) at every processor count.
    for idx in range(len(procs)):
        best_aware = min(
            fig.series["metis"][idx],
            fig.series["jostle"][idx],
            fig.series["spectral"][idx],
            fig.series["bfsgreedy"][idx],
        )
        worst_blind = max(fig.series["random"][idx], fig.series["roundrobin"][idx])
        assert best_aware < worst_blind
    # The diffusive multilevel (Jostle-like) sits in the same league as the
    # gain-driven one (Metis-like).
    assert fig.series["jostle"][-1] <= 1.35 * fig.series["metis"][-1]
    # Metis is the best or within 10 % of the best at p=16.
    at16 = {name: series[-1] for name, series in fig.series.items()}
    assert at16["metis"] <= 1.1 * min(at16.values())
