"""Ablation: task migration vs repartition-from-scratch.

Section 4.3: "Invoking the initialization phase for re-partitioning from
scratch can be very costly.  Hence, this [migration] phase is vital."
Section 8 promises a comprehensive evaluation.  This bench runs both
rebalancing modes against the same imbalanced workload so the trade-off the
thesis argues from intuition is measured: migration is cheap per invocation
but moves one task per pair; the load-aware repartition pays a full
initialization + redistribution but lands directly on a weighted-balanced
partition.
"""

from __future__ import annotations

from repro.apps.imbalance import make_imbalanced_average_fn
from repro.bench import PERSISTENT_IMBALANCE, hex_graph
from repro.bench.tables import SeriesFigure
from repro.core import DiffusionBalancer, GreedyPairBalancer, ICPlatform, PlatformConfig
from repro.partitioning import MetisLikePartitioner


def test_ablation_repartition(benchmark, record):
    graph = hex_graph(64)
    procs = (2, 4, 8, 16)
    node_fn = make_imbalanced_average_fn(PERSISTENT_IMBALANCE)

    def elapsed(p, mode, balancer=None):
        partition = MetisLikePartitioner(seed=1).partition(graph, p)
        config = PlatformConfig(
            iterations=60,
            dynamic_load_balancing=mode is not None,
            lb_period=10,
            rebalance_mode=mode or "migrate",
        )
        platform = ICPlatform(graph, node_fn, config=config, balancer=balancer)
        return platform.run(partition).elapsed

    def run():
        fig = SeriesFigure(
            "ablation_repartition",
            "Rebalancing modes under persistent imbalance (seconds, hex64)",
            procs=list(procs),
            ylabel="seconds",
        )
        fig.add("static", [elapsed(p, None) for p in procs])
        fig.add(
            "migrate-greedy",
            [elapsed(p, "migrate", GreedyPairBalancer(0.25)) for p in procs],
        )
        fig.add(
            "migrate-diffusion",
            [elapsed(p, "migrate", DiffusionBalancer(0.25)) for p in procs],
        )
        fig.add("repartition", [elapsed(p, "repartition") for p in procs])
        return fig

    fig = benchmark.pedantic(run, rounds=1, iterations=1)
    record(fig.experiment_id, fig.render())

    static = fig.series["static"]
    repart = fig.series["repartition"]
    greedy = fig.series["migrate-greedy"]
    diffusion = fig.series["migrate-diffusion"]
    # The load-aware repartition beats the static partition everywhere: it
    # sees exactly the weights the static partitioner could not.
    assert all(r < s for r, s in zip(repart, static))
    # It also beats one-task-at-a-time migration on this persistent,
    # strongly skewed workload -- the flip side of the thesis's cost
    # argument: when imbalance is large and stable, paying for the full
    # repartition is worth it.
    assert sum(repart) < sum(greedy)
    # Decentralized diffusion is competitive with greedy pairing.
    assert sum(diffusion) < sum(static)
