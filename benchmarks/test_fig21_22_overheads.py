"""Figures 21/22: phase/overhead breakdown for fine-grained 64-node
hexagonal grids and random graphs (35 iterations, balancer every 10)."""

from __future__ import annotations

import pytest

from repro.bench import hex_graph, run_overheads
from repro.graphs import random_connected_graph


@pytest.mark.parametrize(
    "which,experiment_id",
    [("hex", "fig21_overheads_hex64"), ("random", "fig22_overheads_rand64")],
)
def test_overheads(benchmark, record, which, experiment_id):
    graph = (
        hex_graph(64)
        if which == "hex"
        else random_connected_graph(64, avg_degree=4.0, seed=0, name="rand64")
    )
    result = benchmark.pedantic(
        lambda: run_overheads(graph, experiment_id=experiment_id),
        rounds=1,
        iterations=1,
    )
    record(result.experiment_id, result.render())

    p2, p16 = result.phases[2], result.phases[16]
    # "the compute and computation overhead comes down with the number of
    # processors as it should".
    assert p16.compute < p2.compute / 4
    assert p16.computation_overhead < p2.computation_overhead / 4
    # Communication overhead is "clearly the most significant source of
    # overhead" at scale: it dominates every non-compute category at p=16.
    assert p16.communication_overhead > p16.computation_overhead
    assert p16.communication_overhead > p16.initialization
    assert p16.communication_overhead > p16.load_balancing
    # Initialization is small but nonzero, and shrinks per rank with p.
    assert 0 < p16.initialization < p2.initialization
