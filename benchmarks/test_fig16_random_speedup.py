"""Figure 16: speedups for 32- and 64-node random graphs (static, Metis)."""

from __future__ import annotations

from repro.bench import run_random_table, run_speedup_figure


def test_fig16_random_speedup(benchmark, record):
    def build():
        tables = [
            run_random_table(n, iterations_list=(20,)) for n in (32, 64)
        ]
        return run_speedup_figure(
            tables,
            iterations=20,
            experiment_id="fig16_random_speedup",
            title="Speed-up plots for static partition (random graphs, Metis)",
        )

    fig = benchmark.pedantic(build, rounds=1, iterations=1)
    record(fig.experiment_id, fig.render())

    (label32, s32), (label64, s64) = fig.series.items()
    # The figure's note: "the speed-up dips slightly when the number of
    # processors increases from 8 to 16" -- reproduce at least a flattening.
    assert s32[4] < s32[3] * 1.35
    # 64-node scales further than 32-node.
    assert s64[-1] > s32[-1]
    # Band check against the paper (~4.4 and ~5.9 at p=16, ours similar).
    assert 2.5 <= s32[-1] <= 7.0
    assert 3.5 <= s64[-1] <= 9.0
