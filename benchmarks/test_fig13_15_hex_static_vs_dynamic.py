"""Figures 13/14/15: static partition vs dynamic load balancing on 64-,
32- and 96-node hexagonal grids under dynamic load imbalance.

Reproduction note (see EXPERIMENTS.md): under the paper's literal setup --
the Figure-23 *rolling* imbalance, 25 iterations, one migrated task per
busy-idle pair -- the described machinery cannot move enough load to beat
the static partition (and the thesis's own imbalance generator contains a
C operator-precedence bug that makes its windows 2-3 uniformly heavy).  The
benchmark therefore exercises the *claim* -- a dynamic balancer captures
imbalance no static partitioner can -- with a persistent heavy region and a
60-iteration horizon, reporting the faithful centralized heuristic and the
greedy extension side by side.
"""

from __future__ import annotations

import pytest

from repro.bench import PERSISTENT_IMBALANCE, hex_graph, run_static_vs_dynamic


@pytest.mark.parametrize(
    "nodes,experiment_id",
    [
        (64, "fig13_static_vs_dynamic_hex64"),
        (32, "fig14_static_vs_dynamic_hex32"),
        (96, "fig15_static_vs_dynamic_hex96"),
    ],
)
def test_static_vs_dynamic_hex(benchmark, record, nodes, experiment_id):
    fig = benchmark.pedantic(
        lambda: run_static_vs_dynamic(
            hex_graph(nodes),
            schedule=PERSISTENT_IMBALANCE,
            iterations=60,
            experiment_id=experiment_id,
        ),
        rounds=1,
        iterations=1,
    )
    record(fig.experiment_id, fig.render())

    static = fig.series["static"]
    centralized = fig.series["dynamic-centralized"]
    greedy = fig.series["dynamic-greedy"]
    # The greedy balancer beats the static partition at every parallel
    # processor count (the paper's qualitative result).
    for idx in range(1, len(fig.procs)):
        assert greedy[idx] > static[idx] * 0.98
    assert sum(greedy[1:]) > sum(static[1:]) * 1.05
    # The faithful centralized heuristic helps where its all-neighbours
    # trigger can fire (low processor counts) and never costs much.
    assert centralized[1] >= static[1] * 0.95
    assert sum(centralized[1:]) >= sum(static[1:]) * 0.9
