"""Figure 23: the dynamic-imbalance generator itself.

The figure is pseudo-code, not a measurement; this bench characterizes the
workload the generator produces -- the per-iteration heavy-node counts and
the total injected compute -- and checks the rolling-window behaviour the
static partitioner cannot capture.
"""

from __future__ import annotations

from repro.apps import PAPER_SCHEDULE
from repro.apps.average import COARSE_GRAIN, FINE_GRAIN


def test_fig23_imbalance_schedule(benchmark, record):
    n = 64

    def characterize():
        per_iteration = []
        for iteration in range(1, 36):
            heavy = PAPER_SCHEDULE.heavy_count(iteration, n)
            total = sum(
                PAPER_SCHEDULE.grain(gid, iteration, n) for gid in range(1, n + 1)
            )
            per_iteration.append((iteration, heavy, total))
        return per_iteration

    profile = benchmark.pedantic(characterize, rounds=1, iterations=1)

    lines = ["Figure 23: rolling imbalance profile (64 nodes)",
             "-" * 48,
             "iter   heavy-nodes   injected-compute (ms)"]
    for iteration, heavy, total in profile:
        lines.append(f"{iteration:4d}   {heavy:11d}   {total * 1e3:10.2f}")
    record("fig23_imbalance_schedule", "\n".join(lines))

    by_iter = {it: (heavy, total) for it, heavy, total in profile}
    # Three 10-iteration windows, each with ~half the nodes heavy.
    for probe in (5, 15, 25):
        assert 30 <= by_iter[probe][0] <= 34
    # Past iteration 30 everything is light.
    assert by_iter[33][0] == 0
    # The heavy region moves: node 10 is heavy in window 1 only.
    assert PAPER_SCHEDULE.is_heavy(10, 5, n)
    assert not PAPER_SCHEDULE.is_heavy(10, 15, n)
    assert not PAPER_SCHEDULE.is_heavy(10, 25, n)
    # Injected compute per iteration during a window is ~half coarse, half fine.
    expected = 32 * COARSE_GRAIN + 32 * FINE_GRAIN
    assert abs(by_iter[5][1] - expected) <= 2 * COARSE_GRAIN
