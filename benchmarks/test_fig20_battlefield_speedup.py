"""Figure 20: battlefield speedups for the five partitioning schemes."""

from __future__ import annotations

from repro.bench import run_battlefield_speedups


def test_fig20_battlefield_speedup(benchmark, record):
    fig = benchmark.pedantic(
        lambda: run_battlefield_speedups(steps=25), rounds=1, iterations=1
    )
    record(fig.experiment_id, fig.render())

    at16 = {name: series[-1] for name, series in fig.series.items()}
    # The gray-code BF partition is by far the worst (paper: below 1x until
    # p=16; ours similar).
    assert at16["bf"] < 0.5 * min(
        at16["metis"], at16["rowband"], at16["colband"], at16["rectband"]
    )
    assert fig.series["bf"][1] < 1.0  # slower than sequential at p=2
    # Metis and the rectangular blocks form the top tier, clearly ahead of
    # the bands ("Metis easily outperforms the rest"; our Metis-like and
    # the near-optimal rectangular blocks end within a whisker).
    top = max(at16["metis"], at16["rectband"])
    assert at16["metis"] >= 0.8 * top
    assert at16["rowband"] < top
    assert at16["colband"] < top
    # Speedups stay modest (the paper tops out near 2.7; the band is wide
    # because our p=2 behaves better than the paper's unexplained flat p=2).
    assert at16["metis"] < 12.0
