"""Table 4: execution time on 96-node hexagonal grids (fine grain, Metis)."""

from __future__ import annotations

from repro.bench import run_hex_table
from repro.bench.paperdata import PAPER_TABLES


def test_table04_hex96(benchmark, record):
    table = benchmark.pedantic(lambda: run_hex_table(96), rounds=1, iterations=1)
    record(table.experiment_id, table.render())

    paper = PAPER_TABLES["table4_hex96"]
    for iters in (10, 15, 20):
        assert abs(table.rows[iters][0] - paper[iters][0]) <= 0.15 * paper[iters][0]
    row = table.rows[20]
    for idx in range(5):
        assert abs(row[idx] - paper[20][idx]) <= 0.6 * paper[20][idx]
    # The biggest grid achieves the best 16-processor speedup of the three
    # hex sizes (Figure 11's ordering).
    assert row[0] / row[4] > 6.0
