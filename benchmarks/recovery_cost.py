"""Recovery-cost benchmark: rollback vs shrink on a mid-run crash.

Not part of the paper's evaluation -- it measures the platform extension
that keeps computing on the survivors after a permanent crash.  Rank 2
dies at ~50 % progress of a 40-iteration imbalanced-average run on the
64-node hex grid; both policies must reproduce the fault-free final node
values bit-for-bit, and shrink must finish sooner in virtual time than a
full rollback (which pays the dead rank's restart and re-executes on the
same processor count every time the fault re-fires).

Run standalone (writes ``benchmarks/results/BENCH_recovery.json``)::

    PYTHONPATH=src python benchmarks/recovery_cost.py

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/recovery_cost.py -q
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.bench import RecoveryComparison, run_recovery_comparison

RESULTS_DIR = Path(__file__).parent / "results"


def run(results_dir: Path = RESULTS_DIR) -> RecoveryComparison:
    comparison = run_recovery_comparison(
        nprocs=4,
        iterations=40,
        crash_rank=2,
        crash_iteration=21,
        checkpoint_period=5,
    )
    results_dir.mkdir(exist_ok=True)
    payload = json.dumps(comparison.to_dict(), indent=2) + "\n"
    (results_dir / "BENCH_recovery.json").write_text(payload)
    (results_dir / "recovery_cost.txt").write_text(comparison.render() + "\n")
    return comparison


def test_recovery_cost():
    comparison = run()
    print(f"\n{comparison.render()}\n")
    rollback = comparison.runs["rollback"]
    shrink = comparison.runs["shrink"]
    # Transparency: both policies land on the fault-free result exactly.
    assert rollback.values_match_baseline
    assert shrink.values_match_baseline
    # The crash is real under both policies.
    assert rollback.recoveries == 1 and shrink.recoveries == 1
    assert shrink.dead_ranks == (2,)
    assert rollback.dead_ranks == ()
    assert shrink.nodes_redistributed > 0
    # The headline claim: continuing on the survivors beats a full
    # rollback-with-restart when the crash lands mid-run.
    assert comparison.shrink_beats_rollback, (
        f"shrink {shrink.elapsed:.4f}s vs rollback {rollback.elapsed:.4f}s"
    )


if __name__ == "__main__":
    result = run()
    print(result.render())
    if not result.shrink_beats_rollback:
        raise SystemExit("FAIL: shrink did not beat rollback")
