"""Ablation: tasks migrated per busy-idle pair.

The thesis ships exactly one task per pair and flags "a more rigorous
algorithm ... which would specify the number of tasks that should be
migrated" as a design enhancement (section 7).  This sweep implements it.
"""

from __future__ import annotations

from repro.apps.imbalance import make_imbalanced_average_fn
from repro.bench import PERSISTENT_IMBALANCE, hex_graph
from repro.bench.tables import SeriesFigure
from repro.core import GreedyPairBalancer, ICPlatform, PlatformConfig
from repro.partitioning import MetisLikePartitioner


def test_ablation_migration_batch(benchmark, record):
    graph = hex_graph(64)
    partition = MetisLikePartitioner(seed=1).partition(graph, 8)
    batches = (1, 2, 4, 8)

    def run():
        fig = SeriesFigure(
            "ablation_migration_batch",
            "Tasks migrated per busy-idle pair (hex64, p=8, 60 iterations)",
            procs=list(batches),
            ylabel="seconds",
        )
        times, moved = [], []
        for batch in batches:
            config = PlatformConfig(
                iterations=60,
                dynamic_load_balancing=True,
                lb_period=10,
                max_migrations_per_pair=batch,
            )
            result = ICPlatform(
                graph,
                make_imbalanced_average_fn(PERSISTENT_IMBALANCE),
                config=config,
                balancer=GreedyPairBalancer(0.25),
            ).run(partition)
            times.append(result.elapsed)
            moved.append(float(len(result.migrations)))
        fig.add("elapsed", times)
        fig.add("migrations", moved)
        return fig

    fig = benchmark.pedantic(run, rounds=1, iterations=1)
    record(fig.experiment_id, fig.render())

    times = dict(zip(batches, fig.series["elapsed"]))
    moved = dict(zip(batches, fig.series["migrations"]))
    # Bigger batches move more tasks per invocation.
    assert moved[4] > moved[1]
    # Finding (recorded in EXPERIMENTS.md): with the greedy balancer firing
    # every 10 iterations, single-task migration is already competitive;
    # moderate batches stay in its band, while large batches (8 tasks per
    # pair) overshoot the busy-idle gradient and oscillate -- evidence that
    # the thesis's proposed "number of tasks" policy needs damping.
    best = min(times.values())
    assert times[1] <= best * 1.15
    for batch in (1, 2, 4):
        assert times[batch] <= best * 1.35
    assert times[8] > times[1]  # the overshoot is real and measurable
