"""Table 3: execution time on 64-node hexagonal grids (fine grain, Metis)."""

from __future__ import annotations

from repro.bench import run_hex_table
from repro.bench.paperdata import PAPER_TABLES


def test_table03_hex64(benchmark, record):
    table = benchmark.pedantic(lambda: run_hex_table(64), rounds=1, iterations=1)
    record(table.experiment_id, table.render())

    paper = PAPER_TABLES["table3_hex64"]
    for iters in (10, 15, 20):
        assert abs(table.rows[iters][0] - paper[iters][0]) <= 0.15 * paper[iters][0]
    row = table.rows[20]
    assert row == sorted(row, reverse=True), "monotone scaling through p=16"
    for idx in range(5):
        assert abs(row[idx] - paper[20][idx]) <= 0.6 * paper[20][idx]
    # 64 nodes scale further than 32 before saturating.
    assert row[0] / row[4] > 5.0
