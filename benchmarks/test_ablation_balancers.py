"""Ablation: load-balancer plug-ins and thresholds.

Goal 3 of the thesis makes the platform a test-bed for balancing
strategies; this bench compares the faithful centralized heuristic against
the greedy pairing extension across thresholds, under the persistent
imbalance workload.
"""

from __future__ import annotations

from repro.apps.imbalance import make_imbalanced_average_fn
from repro.bench import PERSISTENT_IMBALANCE, hex_graph
from repro.bench.tables import SeriesFigure
from repro.core import (
    CentralizedHeuristicBalancer,
    GreedyPairBalancer,
    ICPlatform,
    PlatformConfig,
)
from repro.partitioning import MetisLikePartitioner


def _elapsed(graph, nprocs, balancer):
    partition = MetisLikePartitioner(seed=1).partition(graph, nprocs)
    config = PlatformConfig(
        iterations=60, dynamic_load_balancing=balancer is not None, lb_period=10
    )
    platform = ICPlatform(
        graph,
        make_imbalanced_average_fn(PERSISTENT_IMBALANCE),
        config=config,
        balancer=balancer,
    )
    return platform.run(partition).elapsed


def test_ablation_balancers(benchmark, record):
    graph = hex_graph(64)
    procs = (2, 4, 8, 16)
    strategies = {
        "static": None,
        "centralized-0.25": CentralizedHeuristicBalancer(0.25),
        "centralized-0.10": CentralizedHeuristicBalancer(0.10),
        "greedy-0.25": GreedyPairBalancer(0.25),
        "greedy-0.50": GreedyPairBalancer(0.50),
    }

    def run():
        fig = SeriesFigure(
            "ablation_balancers",
            "Balancer strategies under persistent imbalance (seconds, hex64)",
            procs=list(procs),
            ylabel="seconds",
        )
        for label, balancer in strategies.items():
            fig.add(label, [_elapsed(graph, p, balancer) for p in procs])
        return fig

    fig = benchmark.pedantic(run, rounds=1, iterations=1)
    record(fig.experiment_id, fig.render())

    static = fig.series["static"]
    greedy = fig.series["greedy-0.25"]
    # Greedy pairing dominates the static partition across the board (the
    # gain is largest at mid processor counts where per-proc load lumps are
    # big; at p=2 both sides are nearly balanced already).
    assert all(g <= s * 1.02 for g, s in zip(greedy, static))
    assert sum(greedy) < sum(static) * 0.95
    # A laxer centralized threshold fires at least as often -> no slower
    # overall than the paper's 25 %.
    assert sum(fig.series["centralized-0.10"]) <= sum(
        fig.series["centralized-0.25"]
    ) * 1.05
